"""JSON (de)serialisation of scan results.

The paper stored every DNS message it collected (6.5 TiB, App. D) and
analysed offline.  This module provides the same store-then-analyse
workflow: a scan campaign can be dumped to JSON lines and re-analysed
later without re-scanning — rdata round-trips through the master-file
presentation format.

Streaming semantics: :func:`dump_results` consumes any iterable (a
generator works — nothing is materialised) and :func:`load_results` is
a generator, so a store→re-analyse cycle runs in O(1) memory.  Files
may be gzip-compressed; readers auto-detect by magic bytes, writers
compress when the path ends in ``.gz`` (see :func:`open_results_write`).

Crash tolerance: a process killed mid-write leaves a truncated final
line.  By default :func:`load_results` skips undecodable lines with a
warning (counted in :class:`LoadStats`); ``strict=True`` restores the
raise-on-corruption behaviour.
"""

from __future__ import annotations

import gzip
import io
import json
import logging
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

logger = logging.getLogger(__name__)

GZIP_MAGIC = b"\x1f\x8b"

from repro.dns.name import Name
from repro.dns.rdata import RRSIG
from repro.dns.rrset import RRset
from repro.dns.types import Rcode, RRType
from repro.dns.zonefile import parse_rdata
from repro.scanner.results import (
    ChainLink,
    QueryStatus,
    RRQueryResult,
    SignalScan,
    ZoneScanResult,
)


def rrset_to_obj(rrset: Optional[RRset]) -> Optional[Dict[str, Any]]:
    if rrset is None:
        return None
    return {
        "name": rrset.name.to_text(),
        "type": rrset.rrtype.name,
        "ttl": rrset.ttl,
        "rdata": [rd.to_text() for rd in rrset.rdatas],
    }


def rrset_from_obj(obj: Optional[Dict[str, Any]]) -> Optional[RRset]:
    if obj is None:
        return None
    rrtype = RRType.from_text(obj["type"])
    rrset = RRset(Name.from_text(obj["name"]), rrtype, obj["ttl"])
    for text in obj["rdata"]:
        rrset.add(parse_rdata(rrtype, text))
    return rrset


def _rrsigs_to_obj(rrsigs: List[RRSIG]) -> List[str]:
    return [sig.to_text() for sig in rrsigs]


def _rrsigs_from_obj(items: List[str]) -> List[RRSIG]:
    return [parse_rdata(RRType.RRSIG, text) for text in items]


def query_result_to_obj(result: Optional[RRQueryResult]) -> Optional[Dict[str, Any]]:
    if result is None:
        return None
    return {
        "status": result.status.value,
        "rcode": int(result.rcode) if result.rcode is not None else None,
        "rrset": rrset_to_obj(result.rrset),
        "rrsigs": _rrsigs_to_obj(result.rrsigs),
    }


def query_result_from_obj(obj: Optional[Dict[str, Any]]) -> Optional[RRQueryResult]:
    if obj is None:
        return None
    return RRQueryResult(
        status=QueryStatus(obj["status"]),
        rcode=Rcode.make(obj["rcode"]) if obj["rcode"] is not None else None,
        rrset=rrset_from_obj(obj["rrset"]),
        rrsigs=_rrsigs_from_obj(obj["rrsigs"]),
    )


def _chain_to_obj(chain: List[ChainLink]) -> List[Dict[str, Any]]:
    return [
        {
            "zone": link.zone.to_text(),
            "ds": rrset_to_obj(link.ds_rrset),
            "ds_rrsigs": _rrsigs_to_obj(link.ds_rrsigs),
            "dnskey": rrset_to_obj(link.dnskey_rrset),
            "dnskey_rrsigs": _rrsigs_to_obj(link.dnskey_rrsigs),
        }
        for link in chain
    ]


def _chain_from_obj(items: List[Dict[str, Any]]) -> List[ChainLink]:
    return [
        ChainLink(
            zone=Name.from_text(item["zone"]),
            ds_rrset=rrset_from_obj(item["ds"]),
            ds_rrsigs=_rrsigs_from_obj(item["ds_rrsigs"]),
            dnskey_rrset=rrset_from_obj(item["dnskey"]),
            dnskey_rrsigs=_rrsigs_from_obj(item["dnskey_rrsigs"]),
        )
        for item in items
    ]


def _signal_to_obj(scan: SignalScan) -> Dict[str, Any]:
    return {
        "ns_host": scan.ns_host.to_text(),
        "signal_name": scan.signal_name.to_text() if scan.signal_name else None,
        "name_too_long": scan.name_too_long,
        "cds_by_ip": {k: query_result_to_obj(v) for k, v in scan.cds_by_ip.items()},
        "cdnskey_by_ip": {k: query_result_to_obj(v) for k, v in scan.cdnskey_by_ip.items()},
        "signal_zone_apex": scan.signal_zone_apex.to_text() if scan.signal_zone_apex else None,
        "zone_cuts": [name.to_text() for name in scan.zone_cuts],
        "chain": _chain_to_obj(scan.chain),
        "error": scan.error,
    }


def _signal_from_obj(obj: Dict[str, Any]) -> SignalScan:
    return SignalScan(
        ns_host=Name.from_text(obj["ns_host"]),
        signal_name=Name.from_text(obj["signal_name"]) if obj["signal_name"] else None,
        name_too_long=obj["name_too_long"],
        cds_by_ip={k: query_result_from_obj(v) for k, v in obj["cds_by_ip"].items()},
        cdnskey_by_ip={k: query_result_from_obj(v) for k, v in obj["cdnskey_by_ip"].items()},
        signal_zone_apex=(
            Name.from_text(obj["signal_zone_apex"]) if obj["signal_zone_apex"] else None
        ),
        zone_cuts=[Name.from_text(text) for text in obj["zone_cuts"]],
        chain=_chain_from_obj(obj["chain"]),
        error=obj["error"],
    )


def result_to_obj(result: ZoneScanResult) -> Dict[str, Any]:
    """Serialise one scan result to a JSON-compatible dict."""
    return {
        "zone": result.zone.to_text(),
        "resolved": result.resolved,
        "error": result.error,
        "parent": result.parent.to_text() if result.parent else None,
        "delegation_ns": [name.to_text() for name in result.delegation_ns],
        "ds": query_result_to_obj(result.ds),
        "soa": query_result_to_obj(result.soa),
        "child_ns": query_result_to_obj(result.child_ns),
        "dnskey": query_result_to_obj(result.dnskey),
        "ns_addresses": {
            host.to_text(): list(ips) for host, ips in result.ns_addresses.items()
        },
        "sampled": result.sampled,
        "cds_by_ns": {k: query_result_to_obj(v) for k, v in result.cds_by_ns.items()},
        "cdnskey_by_ns": {k: query_result_to_obj(v) for k, v in result.cdnskey_by_ns.items()},
        "signals": [_signal_to_obj(scan) for scan in result.signals],
        "queries_used": result.queries_used,
    }


def result_from_obj(obj: Dict[str, Any]) -> ZoneScanResult:
    """Rebuild a scan result from :func:`result_to_obj` output."""
    return ZoneScanResult(
        zone=Name.from_text(obj["zone"]),
        resolved=obj["resolved"],
        error=obj["error"],
        parent=Name.from_text(obj["parent"]) if obj["parent"] else None,
        delegation_ns=[Name.from_text(text) for text in obj["delegation_ns"]],
        ds=query_result_from_obj(obj["ds"]),
        soa=query_result_from_obj(obj["soa"]),
        child_ns=query_result_from_obj(obj["child_ns"]),
        dnskey=query_result_from_obj(obj["dnskey"]),
        ns_addresses={
            Name.from_text(host): list(ips) for host, ips in obj["ns_addresses"].items()
        },
        sampled=obj["sampled"],
        cds_by_ns={k: query_result_from_obj(v) for k, v in obj["cds_by_ns"].items()},
        cdnskey_by_ns={k: query_result_from_obj(v) for k, v in obj["cdnskey_by_ns"].items()},
        signals=[_signal_from_obj(item) for item in obj["signals"]],
        queries_used=obj["queries_used"],
    )


def result_to_line(result: ZoneScanResult) -> str:
    """The canonical one-line JSON encoding of one record (no newline).

    Shard segments, the index snapshot's re-packed bucket files, and any
    other JSONL consumer all write this exact encoding, so equal records
    are equal bytes wherever they land — the property the store's
    content digests and the query index's byte-identical determinism
    both rest on.  ASCII-only (``ensure_ascii``), so character offsets
    equal byte offsets.
    """
    return json.dumps(result_to_obj(result), separators=(",", ":"))


def dump_results(
    results: Iterable[ZoneScanResult],
    fp: TextIO,
    locations: Optional[List[Tuple[str, int, int]]] = None,
) -> int:
    """Write results as JSON lines; returns the record count.

    *results* may be any iterable, including a generator — records are
    written as they arrive, nothing is held back.

    When *locations* is a list, one ``(zone, offset, length)`` tuple is
    appended per record: the byte offset and length (newline included)
    of that record's line within the written stream.  For compressed
    output the offsets address the *decompressed* stream.  This is how
    the store exposes segment offsets at commit time to index builders.
    """
    count = 0
    offset = 0
    for result in results:
        line = result_to_line(result)
        fp.write(line)
        fp.write("\n")
        if locations is not None:
            locations.append((result.zone.to_text(), offset, len(line) + 1))
        offset += len(line) + 1
        count += 1
    return count


@dataclass
class LoadStats:
    """Counters filled in by :func:`load_results`."""

    records: int = 0
    skipped: int = 0  # corrupt or truncated lines that were not parseable


def load_results(
    fp: TextIO,
    strict: bool = False,
    stats: Optional[LoadStats] = None,
) -> Iterator[ZoneScanResult]:
    """Stream results back from JSON lines.

    A crash mid-write leaves a truncated final line; by default such
    undecodable lines are skipped with a warning (and counted in
    *stats* when given).  With ``strict=True`` corruption raises, as the
    original loader did.
    """
    if stats is None:
        stats = LoadStats()
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            result = result_from_obj(json.loads(line))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            if strict:
                raise
            stats.skipped += 1
            logger.warning(
                "skipping corrupt scan record at line %d (%d skipped so far)",
                lineno,
                stats.skipped,
            )
            continue
        stats.records += 1
        yield result


# -- gzip-aware file access -------------------------------------------------


def is_gzip(raw: BinaryIO) -> bool:
    """True if the (seekable) binary stream starts with the gzip magic."""
    pos = raw.tell()
    magic = raw.read(2)
    raw.seek(pos)
    return magic == GZIP_MAGIC


class _OwningTextWrapper(io.TextIOWrapper):
    """TextIOWrapper that also closes the raw file under a GzipFile
    (GzipFile never closes a fileobj it was handed)."""

    def __init__(self, buffer, raw: BinaryIO, **kwargs):
        super().__init__(buffer, **kwargs)
        self._raw_file = raw

    def close(self) -> None:
        try:
            super().close()
        finally:
            if not self._raw_file.closed:
                self._raw_file.close()


def open_results_read(path: str) -> TextIO:
    """Open a results file for reading, auto-detecting gzip compression
    by magic bytes (the ``.gz`` suffix is not required)."""
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def open_results_write(path: str, compress: Optional[bool] = None) -> TextIO:
    """Open a results file for writing; gzip when *compress* is true or
    (if None) when the path ends in ``.gz``.

    Compressed output is deterministic (``mtime=0``, no embedded
    filename) so equal record streams produce byte-identical files —
    shard content digests depend on it.
    """
    if compress is None:
        compress = path.endswith(".gz")
    if not compress:
        return open(path, "w", encoding="utf-8", newline="\n")
    raw = open(path, "wb")
    try:
        zfp = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
        return _OwningTextWrapper(zfp, raw, encoding="utf-8", newline="\n")
    except Exception:
        raw.close()
        raise


def load_results_path(
    path: str, strict: bool = False, stats: Optional[LoadStats] = None
) -> Iterator[ZoneScanResult]:
    """Stream results from a (possibly gzipped) file path."""
    with open_results_read(path) as fp:
        yield from load_results(fp, strict=strict, stats=stats)


def dump_results_path(
    path: str, results: Iterable[ZoneScanResult], compress: Optional[bool] = None
) -> int:
    """Write results to a file path (gzipped for ``.gz``); returns the count."""
    with open_results_write(path, compress=compress) as fp:
        return dump_results(results, fp)
