"""Zone-list acquisition — the paper's §3 "Domains" subsection.

The study compiled 287.6 M names from heterogeneous sources; each has a
counterpart here that extracts registrable delegations from the world's
registries the same way:

* **CZDS** — gTLD zone files from the Centralized Zone Data Service:
  modelled as direct zone-file dumps of the gTLD registries
  (:func:`czds_names`, via the master-file serialiser);
* **AXFR** — ccTLDs that publish their zones (.ch, .li, .se, .nu):
  a real RFC 5936 zone transfer against the registry servers
  (:func:`axfr_names`);
* **private arrangement** — .uk and .sk zone files under license:
  modelled as dumps gated on an ``agreements`` set;
* **CT logs** — for ccTLDs with no zone access (.de, .nl, ...): a
  partial, possibly skewed sample (:func:`ctlog_names`, using the §3.1
  samplers).

:func:`compile_scan_list` merges the sources exactly as §3 describes and
reports per-source counts and total coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.types import RRType
from repro.scanner.coverage import UniformSampler
from repro.server.network import NetworkTimeout

# Which suffixes expose which acquisition channel (mirrors §3).
GTLD_SUFFIXES = ("com", "net", "org", "digital", "io")  # CZDS
AXFR_SUFFIXES = ("ch", "li", "se", "nu")  # open AXFR
PRIVATE_SUFFIXES = ("co.uk", "sk")  # private arrangement
CTLOG_SUFFIXES = ("de", "nl", "eu", "bo")  # CT-log sampling only


def _registrable_delegations(zone, suffix: str) -> List[Name]:
    """Owner names of NS RRsets directly below the suffix apex, minus
    infrastructure (nic.) and signaling delegations."""
    origin = zone.origin
    out = []
    for name in zone.delegation_points():
        if len(name) != len(origin) + 1:
            continue
        label = name.labels[0]
        if label.startswith(b"_") or label in (b"nic",):
            continue
        out.append(name)
    return out


def czds_names(world, suffix: str) -> List[Name]:
    """CZDS-style acquisition: parse the registry's zone-file dump."""
    from repro.dns.zonefile import parse_zone

    registry = world.registry_zones[suffix]
    dumped = parse_zone(registry.to_text())
    return _registrable_delegations(dumped, suffix)


def axfr_names(world, suffix: str, registry_ip: str = "192.5.6.30") -> List[Name]:
    """AXFR acquisition: a real zone transfer over the (in-memory) wire."""
    query = make_query(suffix, RRType.make(int(RRType.AXFR)), msg_id=252, dnssec_ok=False)
    try:
        response = world.network.query(registry_ip, query, tcp=True)
    except NetworkTimeout as exc:
        raise RuntimeError(f"AXFR of {suffix} failed: {exc}") from exc
    if not response.answer:
        raise RuntimeError(f"AXFR of {suffix} refused (rcode {response.rcode.name})")
    apex = Name.from_text(suffix)
    seen: Set[Name] = set()
    for rrset in response.answer:
        if int(rrset.rrtype) != int(RRType.NS):
            continue
        if len(rrset.name) != len(apex) + 1:
            continue
        label = rrset.name.labels[0]
        if label.startswith(b"_") or label == b"nic":
            continue
        seen.add(rrset.name)
    return sorted(seen, key=lambda n: n.canonical_key())


def private_names(world, suffix: str, agreements: Set[str]) -> List[Name]:
    """Zone files under private arrangement: only with an agreement."""
    if suffix not in agreements:
        raise PermissionError(f"no agreement covers the {suffix} zone file")
    return _registrable_delegations(world.registry_zones[suffix], suffix)


def ctlog_names(world, suffix: str, sampler: Optional[UniformSampler] = None) -> List[Name]:
    """CT-log acquisition: a partial sample of the suffix's zones."""
    sampler = sampler or UniformSampler(0.6)
    full = _registrable_delegations(world.registry_zones[suffix], suffix)
    return [name for name in full if sampler.keeps(name, False)]


@dataclass
class ScanListReport:
    """What :func:`compile_scan_list` assembled."""

    names: List[Name] = field(default_factory=list)
    per_source: Dict[str, int] = field(default_factory=dict)
    per_suffix: Dict[str, int] = field(default_factory=dict)
    excluded_in_domain: int = 0

    @property
    def total(self) -> int:
        return len(self.names)


def compile_scan_list(
    world,
    agreements: Iterable[str] = PRIVATE_SUFFIXES,
    ctlog_sampler: Optional[UniformSampler] = None,
    exclude_in_domain_ns: bool = True,
) -> ScanListReport:
    """Assemble the scan list from the §3 sources.

    Zones whose NSes all sit inside the zone itself are excluded, "as
    these could never be bootstrapped" (§3) — checked against the
    registry delegation's NS targets.
    """
    report = ScanListReport()
    agreements = set(agreements)
    collected: Dict[str, List[Name]] = {}
    for suffix in world.registry_zones:
        if suffix not in _leaf_suffixes(world):
            continue
        if suffix in GTLD_SUFFIXES:
            names = czds_names(world, suffix)
            source = "czds"
        elif suffix in AXFR_SUFFIXES:
            names = axfr_names(world, suffix)
            source = "axfr"
        elif suffix in PRIVATE_SUFFIXES:
            names = private_names(world, suffix, agreements)
            source = "private"
        else:
            names = ctlog_names(world, suffix, ctlog_sampler)
            source = "ctlog"
        collected[suffix] = names
        report.per_source[source] = report.per_source.get(source, 0) + len(names)
        report.per_suffix[suffix] = len(names)

    for suffix, names in collected.items():
        registry = world.registry_zones[suffix]
        for name in names:
            if exclude_in_domain_ns and _all_ns_in_domain(registry, name):
                report.excluded_in_domain += 1
                continue
            report.names.append(name)
    report.names.sort(key=lambda n: n.canonical_key())
    return report


def _leaf_suffixes(world) -> Set[str]:
    """Suffixes that actually take registrations (excludes bare parents
    like 'uk' that only delegate 'co.uk')."""
    from repro.ecosystem import psl

    return set(psl.SUFFIX_WEIGHTS)


def _all_ns_in_domain(registry, zone_name: Name) -> bool:
    ns_rrset = registry.get_rrset(zone_name, RRType.NS)
    if ns_rrset is None or not len(ns_rrset):
        return False
    return all(
        getattr(rd, "target", None) is not None and rd.target.is_subdomain_of(zone_name)
        for rd in ns_rrset.rdatas
    )
