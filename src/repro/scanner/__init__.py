"""YoDNS-style measurement scanner.

Resolves each zone's full dependency tree, queries *every* authoritative
nameserver (with the paper's Cloudflare anycast sampling), collects all
DNSSEC-relevant RRsets — DNSKEY, parent DS, per-NS CDS/CDNSKEY, and the
RFC 9615 signal-zone CDS — under a per-server rate limit, and emits
serialisable :class:`~repro.scanner.results.ZoneScanResult` records for
the analysis pipeline.
"""

from repro.scanner.coverage import TlsWeightedSampler, UniformSampler, coverage_bias
from repro.scanner.fleet import FleetReport, ScanFleet
from repro.scanner.ratelimit import RateLimiter
from repro.scanner.results import QueryStatus, RRQueryResult, SignalScan, ZoneScanResult
from repro.scanner.sampling import AnycastSamplingPolicy
from repro.scanner.serialize import (
    LoadStats,
    dump_results,
    dump_results_path,
    load_results,
    load_results_path,
)
from repro.scanner.sources import compile_scan_list
from repro.scanner.yodns import Scanner, ScannerConfig

__all__ = [
    "AnycastSamplingPolicy",
    "FleetReport",
    "QueryStatus",
    "RRQueryResult",
    "RateLimiter",
    "ScanFleet",
    "Scanner",
    "ScannerConfig",
    "SignalScan",
    "TlsWeightedSampler",
    "UniformSampler",
    "ZoneScanResult",
    "LoadStats",
    "compile_scan_list",
    "coverage_bias",
    "dump_results",
    "dump_results_path",
    "load_results",
    "load_results_path",
]
