"""Anycast nameserver sampling (§3 of the paper).

Cloudflare serves zones from a pool of a few anycasted addresses: a
typical zone has two NS hostnames, each with 3 IPv4 + 3 IPv6 addresses
(12 server addresses per zone), all of which are fronts for the same
backend fleet.  To finish scans in reasonable time the paper scans only
two addresses (one IPv4, one IPv6) for 95 % of Cloudflare-hosted
domains, and everything for the remaining 5 % as a consistency control.

:class:`AnycastSamplingPolicy` reproduces that policy deterministically:
zone-name hashing decides which zones fall into the 5 % full-scan bucket.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.dns.name import Name

DEFAULT_FULL_SCAN_FRACTION = 0.05


def _is_ipv6(address: str) -> bool:
    return ":" in address


class AnycastSamplingPolicy:
    """Selects which (ns_host, address) pairs to query for a zone."""

    def __init__(
        self,
        anycast_ns_suffixes: Iterable[Name] = (),
        full_scan_fraction: float = DEFAULT_FULL_SCAN_FRACTION,
        salt: bytes = b"repro-sampling",
    ):
        self.anycast_ns_suffixes = list(anycast_ns_suffixes)
        self.full_scan_fraction = full_scan_fraction
        self.salt = salt
        self.zones_sampled = 0
        self.zones_full = 0

    def is_anycast_host(self, ns_host: Name) -> bool:
        return any(ns_host.is_subdomain_of(suffix) for suffix in self.anycast_ns_suffixes)

    def wants_full_scan(self, zone: Name) -> bool:
        """Deterministic 5 % bucket by zone-name hash."""
        digest = hashlib.sha256(self.salt + zone.to_canonical_wire()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction < self.full_scan_fraction

    def select(
        self, zone: Name, ns_addresses: Dict[Name, List[str]]
    ) -> Tuple[List[Tuple[Name, str]], bool]:
        """Return the (ns_host, ip) pairs to query and whether sampling
        was applied (True = reduced scan)."""
        all_pairs = [
            (host, ip)
            for host in sorted(ns_addresses, key=lambda n: n.canonical_key())
            for ip in ns_addresses[host]
        ]
        anycast = all(self.is_anycast_host(host) for host in ns_addresses) and bool(ns_addresses)
        if not anycast or self.wants_full_scan(zone):
            if anycast:
                self.zones_full += 1
            return all_pairs, False
        # Reduced scan: one IPv4 and one IPv6 across the whole pool.
        chosen: List[Tuple[Name, str]] = []
        for want_v6 in (False, True):
            for host, ip in all_pairs:
                if _is_ipv6(ip) == want_v6:
                    chosen.append((host, ip))
                    break
        if not chosen:  # no addresses at all
            return all_pairs, False
        self.zones_sampled += 1
        return chosen, True
