"""Per-nameserver rate limiting on the simulated clock.

The paper limits each scan machine to 50 queries per second per
nameserver "to limit the impact of our scans on DNS operator's load".
A token bucket per destination address reproduces this: when a bucket is
empty, the limiter *advances the simulated clock* to the next refill
instead of sleeping, so scan-duration figures (App. D: "a scan duration
of just over a month") remain meaningful without real waiting.
"""

from __future__ import annotations

from typing import Dict

from repro.server.network import SimulatedClock

DEFAULT_QPS = 50.0


class RateLimiter:
    """Token bucket per destination address, driven by a simulated clock."""

    def __init__(self, clock: SimulatedClock, qps: float = DEFAULT_QPS, burst: float | None = None):
        if qps <= 0:
            raise ValueError("qps must be positive")
        self.clock = clock
        self.qps = qps
        self.burst = burst if burst is not None else qps
        # ip -> (tokens, last_refill_time)
        self._buckets: Dict[str, tuple[float, float]] = {}
        self.waits = 0
        self.total_wait_time = 0.0

    def acquire(self, ip: str) -> float:
        """Take one token for *ip*, advancing the clock if none is
        available.  Returns the (simulated) seconds waited.

        The bucket is charged — and the grant timestamp reserved —
        *before* the clock advance, which may suspend the caller when an
        event loop (:mod:`repro.sched`) drives the clock.  A later
        contender for the same address then sees the reservation sitting
        in its future: the negative elapsed time charges it for the
        pending grant, so same-instant waiters are granted tokens
        exactly ``1/qps`` apart instead of double-spending one refill.
        In sequential code the arithmetic is identical to refill-then-
        wait, so pre-existing token accounting is unchanged.
        """
        now = self.clock.now()
        tokens, last = self._buckets.get(ip, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.qps)
        if tokens >= 1.0:
            self._buckets[ip] = (tokens - 1.0, now)
            return 0.0
        waited = (1.0 - tokens) / self.qps
        # Waiting exactly the deficit refills the bucket to one whole
        # token (or to the burst ceiling when burst < 1).
        self._buckets[ip] = (min(1.0, self.burst) - 1.0, now + waited)
        self.waits += 1
        self.total_wait_time += waited
        self.clock.advance(waited)
        return waited
