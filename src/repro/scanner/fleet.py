"""Multi-machine scan campaigns (§3 / App. D).

The paper's scan ran "just over a month" across multiple scan machines,
each individually limited to 50 qps per nameserver.  A
:class:`ScanFleet` reproduces that arrangement: the zone list is
partitioned across *machines*, each machine is a full scanner with its
*own* rate-limiter clock (machines wait independently), and the
campaign's wall-clock duration is the slowest machine's simulated time.

This makes the feasibility arithmetic concrete: doubling the fleet
roughly halves the duration until per-nameserver contention dominates
(every machine may send a given NS 50 qps — the paper's limit is per
machine, which is why operators like Cloudflare see more).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dns.name import Name
from repro.scanner.ratelimit import RateLimiter
from repro.scanner.results import ZoneScanResult
from repro.scanner.yodns import Scanner, ScannerConfig
from repro.server.network import SimulatedClock


@dataclass
class MachineReport:
    """One scan machine's share of the campaign."""

    index: int
    zones: int
    queries: int
    duration: float  # simulated seconds on this machine's clock


def make_machine_scanner(
    world, config: Optional[ScannerConfig] = None, telemetry=None
) -> tuple[Scanner, SimulatedClock]:
    """Build one scan machine: a full scanner whose rate limiter waits on
    its *own* simulated clock.

    This is the shared machine model of the paper's fleet (App. D): both
    the in-process :class:`ScanFleet` simulation and the multiprocess
    workers of :mod:`repro.parallel` construct their scanners here, so
    per-machine durations always come from an independent clock —
    rate-limit stalls on one machine never advance another machine's
    time.
    """
    scanner = Scanner(
        world.network, world.root_ips, config or world.scanner_config(), telemetry=telemetry
    )
    clock = SimulatedClock()
    scanner.limiter = RateLimiter(clock, qps=scanner.config.qps_per_ns)
    scanner.resolver.limiter = scanner.limiter
    # Spans on this machine are stamped with the machine's own clock.
    scanner.telemetry.bind_clock(clock)
    return scanner, clock


@dataclass
class FleetReport:
    """Campaign outcome across the whole fleet."""

    machines: List[MachineReport] = field(default_factory=list)
    results: List[ZoneScanResult] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock of the campaign = the slowest machine."""
        return max((m.duration for m in self.machines), default=0.0)

    @property
    def total_queries(self) -> int:
        return sum(m.queries for m in self.machines)

    @property
    def duration_days(self) -> float:
        return self.duration / 86_400


class ScanFleet:
    """Partition a scan list across independent scan machines."""

    def __init__(
        self,
        world,
        machines: int = 4,
        config: Optional[ScannerConfig] = None,
    ):
        if machines < 1:
            raise ValueError("a fleet needs at least one machine")
        self.world = world
        self.machine_count = machines
        self._scanners: List[Scanner] = []
        self._clocks: List[SimulatedClock] = []
        for _ in range(machines):
            scanner, clock = make_machine_scanner(world, config)
            self._scanners.append(scanner)
            self._clocks.append(clock)

    def partition(self, zones: Sequence[Name]) -> List[List[Name]]:
        """Deterministic round-robin partition of the zone list."""
        shares: List[List[Name]] = [[] for _ in range(self.machine_count)]
        for index, zone in enumerate(zones):
            shares[index % self.machine_count].append(zone)
        return shares

    def scan(self, zones: Optional[Sequence[Name]] = None) -> FleetReport:
        """Run the campaign; returns per-machine stats and all results."""
        zones = list(zones if zones is not None else self.world.scan_list)
        report = FleetReport()
        queries_before = self.world.network.queries_sent
        for index, share in enumerate(self.partition(zones)):
            scanner = self._scanners[index]
            start_queries = self.world.network.queries_sent
            results = scanner.scan_many(share)
            report.results.extend(results)
            report.machines.append(
                MachineReport(
                    index=index,
                    zones=len(share),
                    queries=self.world.network.queries_sent - start_queries,
                    duration=self._clocks[index].now(),
                )
            )
        assert report.total_queries == self.world.network.queries_sent - queries_before
        return report


def duration_by_fleet_size(
    world,
    sizes: Sequence[int],
    zones: Optional[Sequence[Name]] = None,
) -> Dict[int, float]:
    """Campaign duration (simulated seconds) for each fleet size —
    fresh scanners per size so caches don't leak between runs."""
    out: Dict[int, float] = {}
    for size in sizes:
        fleet = ScanFleet(world, machines=size)
        out[size] = fleet.scan(zones).duration
    return out
