"""Scan result data model.

Everything the analysis pipeline consumes is captured here — the scanner
and the analysis communicate only through these records, mirroring the
paper's store-then-analyse methodology (App. D: "we stored the whole DNS
message for every query made"; we store the decoded RRsets we need).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.name import Name
from repro.dns.rdata import RRSIG
from repro.dns.rrset import RRset
from repro.dns.types import Rcode, RRType


class QueryStatus(enum.Enum):
    """Transport-level outcome of one query."""

    OK = "ok"
    TIMEOUT = "timeout"
    ERROR = "error"  # rcode other than NOERROR/NXDOMAIN
    NXDOMAIN = "nxdomain"


@dataclass
class RRQueryResult:
    """One (qname, qtype) question asked of one server address."""

    status: QueryStatus
    rcode: Optional[Rcode] = None
    rrset: Optional[RRset] = None
    rrsigs: List[RRSIG] = field(default_factory=list)

    @property
    def answered(self) -> bool:
        return self.status in (QueryStatus.OK, QueryStatus.NXDOMAIN)

    @property
    def has_data(self) -> bool:
        return self.status == QueryStatus.OK and self.rrset is not None and len(self.rrset) > 0

    def __repr__(self) -> str:
        return f"<RRQueryResult {self.status.value} rrset={self.rrset!r}>"


@dataclass
class ChainLink:
    """Parent-side DS plus child-side DNSKEY for one delegation step,
    as collected along the path from the root to a zone."""

    zone: Name
    ds_rrset: Optional[RRset]
    ds_rrsigs: List[RRSIG]
    dnskey_rrset: Optional[RRset]
    dnskey_rrsigs: List[RRSIG]


@dataclass
class SignalScan:
    """RFC 9615 signal data for one nameserver hostname of one zone."""

    ns_host: Name
    signal_name: Optional[Name]  # None if it would exceed 255 octets
    name_too_long: bool = False
    # CDS/CDNSKEY at the signaling name, per signal-zone server address.
    cds_by_ip: Dict[str, RRQueryResult] = field(default_factory=dict)
    cdnskey_by_ip: Dict[str, RRQueryResult] = field(default_factory=dict)
    # Apex of the zone that served the signaling name (from SOA).
    signal_zone_apex: Optional[Name] = None
    # Names strictly between the apex and the signaling name that
    # answered an NS query authoritatively — i.e. unexpected zone cuts.
    zone_cuts: List[Name] = field(default_factory=list)
    # Chain of trust from the root down to the signal zone apex.
    chain: List[ChainLink] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def any_cds(self) -> bool:
        return any(r.has_data for r in self.cds_by_ip.values()) or any(
            r.has_data for r in self.cdnskey_by_ip.values()
        )


@dataclass
class ZoneScanResult:
    """Everything measured about one zone."""

    zone: Name
    resolved: bool = False
    error: Optional[str] = None

    # Parent-side view.
    parent: Optional[Name] = None
    delegation_ns: List[Name] = field(default_factory=list)
    ds: Optional[RRQueryResult] = None

    # Child-side view (from one responsive server).
    soa: Optional[RRQueryResult] = None
    child_ns: Optional[RRQueryResult] = None
    dnskey: Optional[RRQueryResult] = None

    # NS host → addresses chosen for querying (after sampling).
    ns_addresses: Dict[Name, List[str]] = field(default_factory=dict)
    sampled: bool = False

    # Per (ns_host, ip) CDS/CDNSKEY answers. Keyed "host@ip".
    cds_by_ns: Dict[str, RRQueryResult] = field(default_factory=dict)
    cdnskey_by_ns: Dict[str, RRQueryResult] = field(default_factory=dict)

    # RFC 9615 signal scans, one per NS host.
    signals: List[SignalScan] = field(default_factory=list)

    queries_used: int = 0

    # -- convenience views (used heavily by the pipeline) ------------------

    def cds_rrsets(self) -> List[Tuple[str, RRQueryResult]]:
        return sorted(self.cds_by_ns.items())

    @property
    def any_cds_answer(self) -> bool:
        """Did any server answer the CDS/CDNSKEY question at all?"""
        return any(r.answered for r in self.cds_by_ns.values()) or any(
            r.answered for r in self.cdnskey_by_ns.values()
        )

    @property
    def has_cds(self) -> bool:
        return any(r.has_data for r in self.cds_by_ns.values()) or any(
            r.has_data for r in self.cdnskey_by_ns.values()
        )

    @property
    def has_signal(self) -> bool:
        return any(s.any_cds for s in self.signals)

    def key(self) -> str:
        return self.zone.to_text()

    def __repr__(self) -> str:
        return f"<ZoneScanResult {self.zone} resolved={self.resolved}>"


def make_signal_name(zone: Name, ns_host: Name) -> Optional[Name]:
    """Build ``_dsboot.<zone>._signal.<ns_host>`` (RFC 9615 §2.1).

    Returns ``None`` when the result would exceed the 255-octet limit —
    the "unusually long child zone names, or NS hostnames" limitation the
    paper describes.
    """
    try:
        prefix = zone.child("_dsboot")
        return prefix.concatenate(Name((b"_signal",)).concatenate(ns_host))
    except ValueError:
        return None
