"""Zone-list coverage and sampling bias (§3.1 of the paper).

The paper could not obtain zone files for some large ccTLDs (.de, .nl)
and fell back to names observed in Certificate Transparency logs,
"capturing a representative sample of between 43 % and 80 % of each
zone" (Sommese et al.).  This module makes that limitation measurable:

* :class:`UniformSampler` — the idealised representative sample;
* :class:`TlsWeightedSampler` — a CT-log-shaped sample: zones that run
  TLS (and, correlated, professional DNS hosting with DNSSEC) are more
  likely to appear in CT logs, overstating adoption;
* :func:`coverage_bias` — scan the sample and the full population and
  quantify the estimation error.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.dns.name import Name


def _bucket(salt: bytes, name: Name) -> float:
    digest = hashlib.sha256(salt + name.to_canonical_wire()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class UniformSampler:
    """Keep each zone with probability *fraction*, independent of its
    configuration — the best case the paper hopes CT logs approximate."""

    name = "uniform"

    def __init__(self, fraction: float, salt: bytes = b"ctlog-uniform"):
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.salt = salt

    def keeps(self, zone: Name, secured: bool) -> bool:
        return _bucket(self.salt, zone) < self.fraction


class TlsWeightedSampler:
    """CT-log-shaped inclusion: zones with professionally managed DNS
    (proxied by *secured*) are *weight*× more likely to show up,
    because running TLS correlates with running DNSSEC-capable hosting."""

    name = "tls-weighted"

    def __init__(self, fraction: float, weight: float = 2.0, salt: bytes = b"ctlog-tls"):
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.weight = weight
        self.salt = salt

    def keeps(self, zone: Name, secured: bool) -> bool:
        probability = min(1.0, self.fraction * (self.weight if secured else 1.0))
        return _bucket(self.salt, zone) < probability


@dataclass
class CoverageReport:
    """Full-population truth vs. the sample's estimate."""

    sampler: str
    suffix: str
    population: int
    sample_size: int
    true_secured_pct: float
    sampled_secured_pct: float

    @property
    def coverage(self) -> float:
        return self.sample_size / self.population if self.population else 0.0

    @property
    def bias_points(self) -> float:
        """Estimation error in percentage points (positive = overstated)."""
        return self.sampled_secured_pct - self.true_secured_pct


def coverage_bias(
    zones: Sequence[Name],
    is_secured: Callable[[Name], bool],
    sampler,
    suffix: str = "",
) -> CoverageReport:
    """Compare a sampler's adoption estimate against the full truth.

    *zones* is the full population (e.g. every zone of one ccTLD in a
    world); *is_secured* the per-zone ground truth or measured status.
    """
    population = list(zones)
    secured_flags = {zone: is_secured(zone) for zone in population}
    sample = [zone for zone in population if sampler.keeps(zone, secured_flags[zone])]

    def pct(group: Iterable[Name]) -> float:
        group = list(group)
        if not group:
            return 0.0
        return 100.0 * sum(secured_flags[z] for z in group) / len(group)

    return CoverageReport(
        sampler=sampler.name,
        suffix=suffix,
        population=len(population),
        sample_size=len(sample),
        true_secured_pct=pct(population),
        sampled_secured_pct=pct(sample),
    )


def per_suffix_zones(world) -> Dict[str, List[Name]]:
    """Group a world's scan list by public suffix."""
    from repro.ecosystem import psl

    out: Dict[str, List[Name]] = {}
    for name in world.scan_list:
        try:
            _, suffix = psl.registrable_part(name)
        except ValueError:
            continue
        out.setdefault(suffix, []).append(name)
    return out
