"""The read-serving plane: point lookups and scans over a snapshot.

A :class:`QueryService` answers per-zone questions — "what is this
zone's DNSSEC status, is it bootstrappable, who operates it" — against
the indexed snapshot built by :func:`repro.query.build_index`, at a
per-lookup cost that never depends on campaign size:

* a **point lookup** binary-searches the bucket's sorted ``.idx`` file
  with ~20-byte probes (≤ ``log2(bucket records) + 1`` seeks), then
  reads exactly one meta row — it never streams a segment;
* the hot-field answer is an LRU-cached :class:`ZoneStatusView`;
  *misses are cached too* (the negative cache), so hammering the
  service with absent names stays O(1) amortised;
* **enumerations** (status histograms, operator portfolios) read the
  columnar sidecars — a few small line-per-record files — instead of
  decoding full records;
* the full archived record behind a view is one seek away
  (:meth:`zone_record`) because each meta row carries its record's
  ``(offset, length)`` in the re-packed bucket data file.

Consistency model: the service serves the *pinned* snapshot.  A
campaign appending to the same store changes segments and the manifest
but never ``index/``, so every answer stays internally consistent
(stale-but-consistent); :meth:`check_stale` reports whether the live
manifest has moved past the pin, and a rebuild + fresh service picks
up the new records.

Everything the service does is accounted through ``query.*`` telemetry
counters (lookups, cache hits/misses, negative answers, index seeks,
bytes read, enumerations) — which is also how the tests pin the
"no full scan, bounded bytes per lookup" contract.
"""

from __future__ import annotations

import json
from collections import Counter, OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.dns.name import Name, NameError_
from repro.monitor.layout import epoch_dir, is_monitor_root, list_epoch_dirs
from repro.obs.telemetry import as_telemetry
from repro.scanner.results import ZoneScanResult
from repro.scanner.serialize import result_from_obj
from repro.store.manifest import load_manifest
from repro.store.shards import shard_for_zone
from repro.query.snapshot import (
    FLAG_CDS_DELETE,
    FLAG_HAS_CDS,
    FLAG_HAS_SIGNAL,
    FLAG_MULTI_OPERATOR,
    FLAG_RESOLVED,
    FLAG_SAMPLED,
    IDX_ROW,
    IDX_ROW_SIZE,
    QueryError,
    SnapshotInfo,
    index_dir,
    load_snapshot,
    manifest_generation,
    zone_key64,
)

DEFAULT_CACHE_SIZE = 4096

# Sentinel cached for zones the snapshot does not hold.
_NEGATIVE = None


@dataclass(frozen=True)
class ZoneStatusView:
    """The hot per-zone answer: assessment fields without the record."""

    zone: str
    status: str
    eligibility: str
    outcome: str
    operator: str
    signal_operator: Optional[str]
    flags: int
    bucket: int
    offset: int  # record location in the bucket data file …
    length: int  # … for QueryService.zone_record

    @property
    def resolved(self) -> bool:
        return bool(self.flags & FLAG_RESOLVED)

    @property
    def has_cds(self) -> bool:
        return bool(self.flags & FLAG_HAS_CDS)

    @property
    def cds_delete(self) -> bool:
        return bool(self.flags & FLAG_CDS_DELETE)

    @property
    def has_signal(self) -> bool:
        return bool(self.flags & FLAG_HAS_SIGNAL)

    @property
    def multi_operator(self) -> bool:
        return bool(self.flags & FLAG_MULTI_OPERATOR)

    @property
    def sampled(self) -> bool:
        return bool(self.flags & FLAG_SAMPLED)

    def render(self) -> str:
        """What ``repro-dnssec query get`` prints."""
        lines = [
            f"zone:         {self.zone}",
            f"status:       {self.status}",
            f"eligibility:  {self.eligibility}",
            f"signal:       {self.outcome}",
            f"operator:     {self.operator}"
            + (" (multi-operator)" if self.multi_operator else ""),
        ]
        if self.signal_operator is not None:
            lines.append(f"signal via:   {self.signal_operator}")
        tags = [
            tag
            for tag, on in (
                ("resolved", self.resolved),
                ("cds", self.has_cds),
                ("cds-delete", self.cds_delete),
                ("sampled", self.sampled),
            )
            if on
        ]
        if tags:
            lines.append(f"tags:         {' '.join(tags)}")
        return "\n".join(lines)


def _normalize_zone(name: str) -> str:
    """Canonical dotted form matching stored ``zone.to_text()`` output."""
    try:
        return Name.from_text(name).to_text()
    except NameError_:
        # Absent from the snapshot by construction; still a valid query.
        return name if name.endswith(".") else name + "."


class QueryService:
    """Read-serving handle on one store's indexed snapshot."""

    def __init__(
        self,
        store_root: Path,
        cache_size: int = DEFAULT_CACHE_SIZE,
        telemetry=None,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.root = Path(store_root)
        self.cache_size = cache_size
        self.telemetry = as_telemetry(telemetry)
        self._cache: "OrderedDict[str, Optional[ZoneStatusView]]" = OrderedDict()
        self._handles: Dict[Tuple[int, str], Any] = {}
        # Monitoring plane: a monitor root is served by delegating each
        # lookup to the per-epoch sub-service of the newest epoch whose
        # snapshot holds the zone (newest-wins, like the merged
        # analysis).  self.snapshot stays None in that mode.
        self._epoch_services: Dict[int, "QueryService"] = {}
        self._monitor_epochs: List[int] = []
        if is_monitor_root(self.root):
            self._monitor_epochs = [
                epoch
                for epoch in list_epoch_dirs(self.root)
                if load_manifest(epoch_dir(self.root, epoch)).complete
            ]
            if not self._monitor_epochs:
                raise QueryError(
                    f"monitor at {self.root} has no completed epochs to serve"
                )
            self.snapshot: Optional[SnapshotInfo] = None
        else:
            self.snapshot = load_snapshot(self.root)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for fp in self._handles.values():
            fp.close()
        self._handles.clear()
        for service in self._epoch_services.values():
            service.close()
        self._epoch_services.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- freshness ---------------------------------------------------------

    def check_stale(self) -> bool:
        """True when the live manifest has moved past the pinned
        generation (new segments committed since the index was built).
        The service keeps serving the pinned snapshot either way."""
        if self._monitor_epochs:
            # A monitor root is stale when its newest served epoch is.
            return self._epoch_service(self._monitor_epochs[-1]).check_stale()
        manifest = load_manifest(self.root)
        stale = not self.snapshot.is_fresh(manifest)
        if self.telemetry.enabled:
            self.telemetry.count("query.stale_checks")
            if stale:
                self.telemetry.count("query.stale_detected")
        return stale

    # -- point lookups -----------------------------------------------------

    def zone_status(
        self, name: str, epoch: Optional[int] = None
    ) -> Optional[ZoneStatusView]:
        """Point lookup: the hot-field view for one zone, or ``None``.

        Cache → binary search of the bucket ``.idx`` → one meta row.
        Never streams a bucket, never touches a shard segment.

        On a monitor root, *epoch* selects the simulated week to answer
        as of (default: the newest complete epoch): the lookup walks
        epochs from there down to the baseline and returns the newest
        view of the zone — the same newest-wins rule the merged epoch
        analysis applies.  On a plain store, a non-matching *epoch* is
        an error.
        """
        if self._monitor_epochs:
            service = self._service_holding(name, epoch)
            return service.zone_status(name) if service is not None else None
        if epoch is not None and epoch != self.snapshot.epoch:
            raise QueryError(
                f"this snapshot holds epoch {self.snapshot.epoch}, not epoch {epoch}"
            )
        zone = _normalize_zone(name)
        tel = self.telemetry
        if tel.enabled:
            tel.count("query.lookups")
        if zone in self._cache:
            self._cache.move_to_end(zone)
            view = self._cache[zone]
            if tel.enabled:
                tel.count("query.cache_hits")
                if view is _NEGATIVE:
                    tel.count("query.negative")
            return view
        if tel.enabled:
            tel.count("query.cache_misses")
        view = self._lookup(zone)
        self._cache[zone] = view
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        if view is _NEGATIVE and tel.enabled:
            tel.count("query.negative")
        return view

    def zone_record(
        self, name: str, epoch: Optional[int] = None
    ) -> Optional[ZoneScanResult]:
        """The full archived record behind :meth:`zone_status` — one
        seek + one read of the re-packed bucket data file."""
        if self._monitor_epochs:
            service = self._service_holding(name, epoch)
            return service.zone_record(name) if service is not None else None
        view = self.zone_status(name, epoch=epoch)
        if view is None:
            return None
        files = self.snapshot.bucket_files(view.bucket)
        fp = self._handle(view.bucket, "data", files.data, binary=False)
        fp.seek(view.offset)
        line = fp.read(view.length)
        if self.telemetry.enabled:
            self.telemetry.count("query.bytes_read", view.length)
        return result_from_obj(json.loads(line))

    # -- enumerations ------------------------------------------------------

    def iter_status(self) -> Iterator[ZoneStatusView]:
        """Every zone's hot-field view, in deterministic snapshot order
        (bucket, then zone hash) — reads columns, not records."""
        # Guard at call time, not first next() — misuse should not hide
        # inside a lazily-consumed generator.
        self._require_single_store("iter_status")
        return self._iter_status()

    def _iter_status(self) -> Iterator[ZoneStatusView]:
        if self.telemetry.enabled:
            self.telemetry.count("query.enumerations")
        columns = [self._column(name) for name in
                   ("zone", "status", "eligibility", "outcome", "operator", "flags")]
        for zone, status, eligibility, outcome, operator, flags in zip(*columns):
            yield ZoneStatusView(
                zone=zone,
                status=status,
                eligibility=eligibility,
                outcome=outcome,
                operator=operator,
                signal_operator=None,  # meta-row field; not in columns
                flags=int(flags),
                bucket=shard_for_zone(zone, self.snapshot.num_buckets),
                offset=-1,
                length=-1,
            )

    def status_counts(self) -> Counter:
        """Histogram of DNSSEC status classes over the whole snapshot."""
        return self._column_counts("status")

    def eligibility_counts(self) -> Counter:
        return self._column_counts("eligibility")

    def outcome_counts(self) -> Counter:
        return self._column_counts("outcome")

    def operator_counts(self) -> Counter:
        """Operator → portfolio size (zones attributed to it)."""
        return self._column_counts("operator")

    def zones_with_status(self, status: str) -> List[str]:
        """Zone names in one status class (e.g. ``"island"``)."""
        self._require_single_store("zones_with_status")
        if self.telemetry.enabled:
            self.telemetry.count("query.enumerations")
        return [
            zone
            for zone, value in zip(self._column("zone"), self._column("status"))
            if value == status
        ]

    def zones_for_operator(self, operator: str) -> List[str]:
        """Zone names attributed to one operator (the operator scan)."""
        self._require_single_store("zones_for_operator")
        if self.telemetry.enabled:
            self.telemetry.count("query.enumerations")
        return [
            zone
            for zone, value in zip(self._column("zone"), self._column("operator"))
            if value == operator
        ]

    # -- internals ---------------------------------------------------------

    def _require_single_store(self, operation: str) -> None:
        """Enumerations are per-store: a delta epoch holds only the
        week's changed zones, so enumerating a monitor root would
        silently mix populations.  The merged longitudinal view lives
        on :meth:`repro.monitor.Monitor.analyze` / ``classifications``;
        a single week is one epoch store away."""
        if self._monitor_epochs:
            newest = epoch_dir(self.root, self._monitor_epochs[-1])
            raise QueryError(
                f"{operation} is not defined on a monitor root — open a "
                f"per-epoch store (e.g. QueryService({str(newest)!r})) or use "
                "repro.monitor.Monitor.analyze() for the merged view"
            )

    def _epoch_service(self, epoch: int) -> "QueryService":
        service = self._epoch_services.get(epoch)
        if service is None:
            service = QueryService(
                epoch_dir(self.root, epoch),
                cache_size=self.cache_size,
                telemetry=self.telemetry,
            )
            self._epoch_services[epoch] = service
        return service

    def _service_holding(
        self, name: str, epoch: Optional[int]
    ) -> Optional["QueryService"]:
        """The newest per-epoch sub-service (at or below *epoch*) whose
        snapshot holds the zone, or None when no epoch scanned it."""
        if epoch is None:
            epoch = self._monitor_epochs[-1]
        candidates = [e for e in self._monitor_epochs if e <= epoch]
        if not candidates:
            raise QueryError(
                f"monitor at {self.root} has no complete epoch <= {epoch}"
            )
        for e in reversed(candidates):
            service = self._epoch_service(e)
            if service.zone_status(name) is not None:
                return service
        return None

    def _lookup(self, zone: str) -> Optional[ZoneStatusView]:
        bucket = shard_for_zone(zone, self.snapshot.num_buckets)
        files = self.snapshot.bucket_files(bucket)
        key = zone_key64(zone)
        idx_fp = self._handle(bucket, "idx", files.idx, binary=True)
        idx_fp.seek(0, 2)
        rows = idx_fp.tell() // IDX_ROW_SIZE

        tel = self.telemetry

        def probe(i: int) -> Tuple[int, int, int]:
            idx_fp.seek(i * IDX_ROW_SIZE)
            row = IDX_ROW.unpack(idx_fp.read(IDX_ROW_SIZE))
            if tel.enabled:
                tel.count("query.index_seeks")
                tel.count("query.bytes_read", IDX_ROW_SIZE)
            return row

        # Leftmost row with key64 >= key (classic bisect over the file).
        lo, hi = 0, rows
        while lo < hi:
            mid = (lo + hi) // 2
            if probe(mid)[0] < key:
                lo = mid + 1
            else:
                hi = mid
        # key64 collisions are ~2^-64 but cheap to handle: walk equal
        # keys comparing actual zone names from the meta rows.
        zone_cmp = zone.lower()
        meta_fp = self._handle(bucket, "meta", files.meta, binary=False)
        while lo < rows:
            key64, meta_offset, meta_len = probe(lo)
            if key64 != key:
                return None
            meta_fp.seek(meta_offset)
            obj = json.loads(meta_fp.read(meta_len))
            if tel.enabled:
                tel.count("query.bytes_read", meta_len)
            if obj["zone"].lower() == zone_cmp:
                return ZoneStatusView(
                    zone=obj["zone"],
                    status=obj["status"],
                    eligibility=obj["eligibility"],
                    outcome=obj["outcome"],
                    operator=obj["operator"],
                    signal_operator=obj["signal_operator"],
                    flags=obj["flags"],
                    bucket=bucket,
                    offset=obj["offset"],
                    length=obj["length"],
                )
            lo += 1
        return None

    def _handle(self, bucket: int, kind: str, rel_path: str, binary: bool):
        """Lazily opened, service-lifetime file handle per bucket file."""
        cache_key = (bucket, kind)
        fp = self._handles.get(cache_key)
        if fp is None:
            path = index_dir(self.root) / rel_path
            if not path.exists():
                raise QueryError(f"snapshot references missing file {rel_path}")
            fp = open(path, "rb") if binary else open(path, "r", encoding="utf-8")
            self._handles[cache_key] = fp
        return fp

    def _column(self, name: str) -> List[str]:
        path = self.snapshot.column_path(name)
        if not path.exists():
            raise QueryError(f"snapshot is missing column {name}")
        text = path.read_text(encoding="utf-8")
        if self.telemetry.enabled:
            self.telemetry.count("query.bytes_read", len(text))
        return text.splitlines()

    def _column_counts(self, name: str) -> Counter:
        self._require_single_store("enumeration")
        if self.telemetry.enabled:
            self.telemetry.count("query.enumerations")
        return Counter(self._column(name))

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """What ``repro-dnssec query serve``'s banner prints."""
        if self._monitor_epochs:
            newest = self._epoch_service(self._monitor_epochs[-1])
            return "\n".join(
                [
                    f"monitor:   {self.root}",
                    f"epochs:    {len(self._monitor_epochs)} complete "
                    f"(serving as of epoch {self._monitor_epochs[-1]})",
                    f"campaign:  seed={newest.snapshot.seed} "
                    f"scale={newest.snapshot.scale:g}",
                ]
            )
        manifest = load_manifest(self.root)
        fresh = self.snapshot.is_fresh(manifest)
        behind = manifest.records - (self.snapshot.pinned_records or self.snapshot.records)
        lines = [
            f"store:     {self.root}",
            f"snapshot:  {self.snapshot.records} zones across "
            f"{self.snapshot.num_buckets} buckets (v{self.snapshot.version})",
            f"campaign:  seed={self.snapshot.seed} scale={self.snapshot.scale:g}",
            f"freshness: {'fresh' if fresh else f'stale ({behind} records behind)'}",
            f"operators: {'attributed' if self.snapshot.operators_attributed else 'not attributed'}",
        ]
        return "\n".join(lines)
