"""The indexed snapshot: a compacted, versioned read twin of a store.

``build_index`` walks a campaign store's manifest in commit order and
emits, under ``<store>/index/``, everything the serving layer
(:mod:`repro.query.service`) needs to answer per-zone questions without
streaming the campaign:

* **re-packed bucket data** — ``buckets/qNNN.jsonl``: every record of
  zone-hash bucket N as canonical JSON lines (uncompressed, so a record
  is one seek + one read), sorted by ``(key64, zone)`` where ``key64``
  is the first 8 bytes of the zone-name SHA-256 — the same hash family
  that routes records to buckets;
* **per-bucket meta rows** — ``buckets/qNNN.meta.jsonl``: one small
  JSON line per zone carrying the hot assessment fields (status,
  eligibility, signal outcome, operator, flags) plus the record's
  ``(offset, length)`` in the data file;
* **sorted offset indexes** — ``buckets/qNNN.idx``: fixed-width binary
  rows ``(key64, meta_offset, meta_length)`` (20 bytes, big-endian),
  sorted by key — a point lookup is a binary search of ~20-byte probes;
* **columnar sidecars** — ``columns/*.col``: one value per line in
  global ``(bucket, key64, zone)`` order for the fields enumerations
  touch (zone, status, eligibility, outcome, operator, flags), so an
  operator scan or a status-class count reads two small columns instead
  of the archive.

Determinism invariant: every file above is a pure function of the
*record set* (plus the operator DB and validation time), never of the
segment layout — a store written serially, by N workers, or through a
kill/resume produces a byte-identical index.  The one exception is
``pin.json``, which records the manifest generation the snapshot was
built from (segment paths and digests are layout-specific by nature)
and is therefore excluded from the byte-identity contract.  The pin is
what lets a :class:`~repro.query.service.QueryService` keep serving a
*stale-but-consistent* snapshot while a campaign appends new segments:
appends change the manifest, not ``index/``, and the service reports
staleness by comparing the live manifest digest against the pin.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.bootstrap import SignalOutcome, assess_zone
from repro.core.operators import UNKNOWN_OPERATOR, OperatorDB
from repro.core.pipeline import signal_operator_for
from repro.dnssec.validator import DEFAULT_VALIDATION_TIME
from repro.monitor.layout import epoch_dir, is_monitor_root, list_epoch_dirs
from repro.obs.telemetry import as_telemetry
from repro.scanner.serialize import result_to_obj
from repro.store.manifest import CampaignManifest, load_manifest
from repro.store.shards import StoreError, iter_shard

INDEX_DIR = "index"
BUCKETS_DIR = "buckets"
COLUMNS_DIR = "columns"
SNAPSHOT_FILENAME = "snapshot.json"
PIN_FILENAME = "pin.json"
SNAPSHOT_VERSION = 1

# One binary index row: key64, meta offset, meta length (big-endian).
IDX_ROW = struct.Struct(">QQI")
IDX_ROW_SIZE = IDX_ROW.size

COLUMN_NAMES = ("zone", "status", "eligibility", "outcome", "operator", "flags")

# Meta/column flag bits (kept additive; never reassign existing bits).
FLAG_RESOLVED = 1
FLAG_HAS_CDS = 2
FLAG_CDS_DELETE = 4
FLAG_HAS_SIGNAL = 8
FLAG_MULTI_OPERATOR = 16
FLAG_SAMPLED = 32


class QueryError(StoreError):
    """The query index is missing, stale where freshness was required,
    or inconsistent with its own metadata."""


def index_dir(store_root: Path) -> Path:
    return Path(store_root) / INDEX_DIR


def snapshot_path(store_root: Path) -> Path:
    return index_dir(store_root) / SNAPSHOT_FILENAME


def pin_path(store_root: Path) -> Path:
    return index_dir(store_root) / PIN_FILENAME


def zone_key64(zone: str) -> int:
    """Sort/lookup key: first 8 bytes of the zone-name SHA-256 (the
    same digest whose first 4 bytes route the zone to its bucket)."""
    digest = hashlib.sha256(zone.lower().encode("ascii", "backslashreplace")).digest()
    return int.from_bytes(digest[:8], "big")


def manifest_generation(manifest: CampaignManifest) -> str:
    """Digest identifying one manifest generation (segment set).

    Layout-specific on purpose: two stores holding the same records via
    different segment layouts pin different generations — the pin
    answers "has *this* store moved since the snapshot was built",
    nothing more.
    """
    hasher = hashlib.sha256()
    for entry in sorted(f"{i.sequence}:{i.path}:{i.sha256}" for i in manifest.shards):
        hasher.update(entry.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


@dataclass(frozen=True)
class BucketFiles:
    """Index-relative paths of one bucket's three files."""

    bucket: int

    @property
    def data(self) -> str:
        return f"{BUCKETS_DIR}/q{self.bucket:03d}.jsonl"

    @property
    def meta(self) -> str:
        return f"{BUCKETS_DIR}/q{self.bucket:03d}.meta.jsonl"

    @property
    def idx(self) -> str:
        return f"{BUCKETS_DIR}/q{self.bucket:03d}.idx"


@dataclass
class SnapshotInfo:
    """The parsed ``snapshot.json`` + ``pin.json`` pair."""

    root: Path  # the *store* root (index lives under root/index)
    version: int
    seed: int
    scale: float
    num_buckets: int
    records: int
    zones_digest: str
    operators_attributed: bool
    validation_now: int
    # Monitoring plane: the epoch of the indexed campaign store (None
    # for plain campaigns — such snapshots serialise unchanged).
    epoch: Optional[int] = None
    buckets: List[Dict[str, Any]] = field(default_factory=list)
    columns: Dict[str, Dict[str, str]] = field(default_factory=dict)
    pin: Dict[str, Any] = field(default_factory=dict)

    @property
    def pinned_generation(self) -> Optional[str]:
        return self.pin.get("manifest_generation")

    @property
    def pinned_records(self) -> Optional[int]:
        return self.pin.get("manifest_records")

    def is_fresh(self, manifest: CampaignManifest) -> bool:
        """True when the live manifest is exactly the pinned generation."""
        return self.pinned_generation == manifest_generation(manifest)

    def column_path(self, name: str) -> Path:
        return index_dir(self.root) / COLUMNS_DIR / f"{name}.col"

    def bucket_files(self, bucket: int) -> BucketFiles:
        if not 0 <= bucket < self.num_buckets:
            raise QueryError(f"bucket {bucket} out of range (0..{self.num_buckets - 1})")
        return BucketFiles(bucket)


def _meta_row(
    zone: str,
    assessment,
    operator: str,
    signal_operator: Optional[str],
    flags: int,
    offset: int,
    length: int,
) -> Dict[str, Any]:
    return {
        "zone": zone,
        "status": assessment.status.value,
        "eligibility": assessment.eligibility.value,
        "outcome": assessment.signal_outcome.value,
        "operator": operator,
        "signal_operator": signal_operator,
        "flags": flags,
        "offset": offset,
        "length": length,
    }


def canonical_record_line(result) -> str:
    """One record as canonical snapshot JSON (no newline).

    ``queries_used`` is zeroed: it counts the DNS queries *this
    execution* spent on the zone, which depends on cache warmth and
    therefore on how the campaign was partitioned (serial, workers,
    kill/resume).  Everything measured *about the zone* is identical
    across layouts; the execution accounting is not, so the snapshot —
    a pure function of the record set — cannot carry it.  The store
    segments remain the source of truth for scan-cost accounting.
    """
    obj = result_to_obj(result)
    obj["queries_used"] = 0
    return json.dumps(obj, separators=(",", ":"))


def _record_flags(result, assessment, multi: bool) -> int:
    flags = 0
    if result.resolved:
        flags |= FLAG_RESOLVED
    if assessment.cds.present:
        flags |= FLAG_HAS_CDS
    if assessment.cds.present and assessment.cds.is_delete:
        flags |= FLAG_CDS_DELETE
    if assessment.signal_outcome != SignalOutcome.NO_SIGNAL:
        flags |= FLAG_HAS_SIGNAL
    if multi:
        flags |= FLAG_MULTI_OPERATOR
    if result.sampled:
        flags |= FLAG_SAMPLED
    return flags


def build_index(
    store_root: Path,
    operator_db: Optional[OperatorDB] = None,
    now: int = DEFAULT_VALIDATION_TIME,
    telemetry=None,
) -> SnapshotInfo:
    """Compact a campaign store into its query snapshot.

    Walks the manifest in commit order (later commits win on duplicate
    zones, matching the reader's stream order), re-packs each zone-hash
    bucket sorted by ``(key64, zone)``, derives the hot assessment
    fields through the same ``assess_zone`` + operator attribution the
    analysis pipeline applies, and writes the whole snapshot into a
    temp directory swapped in at the end — an interrupted build never
    leaves a half snapshot under ``index/``.

    Without *operator_db* every zone attributes to ``unknown`` —
    exactly what :meth:`StoreReader.reanalyze`'s default does — so the
    differential invariant (index answers == full-scan ground truth)
    holds whichever way both sides are called.

    Monitoring plane: pointed at a monitor root instead of a single
    campaign store, the build recurses — one snapshot per complete
    epoch store — and returns the newest epoch's :class:`SnapshotInfo`,
    so the epoch-aware :class:`~repro.query.service.QueryService` finds
    every per-epoch index already in place.
    """
    root = Path(store_root)
    if is_monitor_root(root):
        newest: Optional[SnapshotInfo] = None
        for epoch in list_epoch_dirs(root):
            store = epoch_dir(root, epoch)
            if not load_manifest(store).complete:
                continue
            newest = build_index(store, operator_db=operator_db, now=now, telemetry=telemetry)
        if newest is None:
            raise StoreError(f"monitor at {root} has no completed epochs to index")
        return newest
    manifest = load_manifest(root)
    telemetry = as_telemetry(telemetry)
    db = operator_db or OperatorDB()

    final_dir = index_dir(root)
    tmp_dir = root / (INDEX_DIR + ".tmp")
    if tmp_dir.exists():
        shutil.rmtree(tmp_dir)
    (tmp_dir / BUCKETS_DIR).mkdir(parents=True)
    (tmp_dir / COLUMNS_DIR).mkdir(parents=True)

    ordered = sorted(manifest.shards, key=lambda info: (info.sequence, info.bucket))
    columns: Dict[str, List[str]] = {name: [] for name in COLUMN_NAMES}
    bucket_entries: List[Dict[str, Any]] = []
    total_records = 0
    zones_hasher = hashlib.sha256()

    with telemetry.span("index_build") as span:
        for bucket in range(manifest.num_shards):
            # Commit order within the bucket; a dict keyed by zone makes
            # later commits win should a store ever hold a duplicate.
            latest: Dict[str, Any] = {}
            for info in ordered:
                if info.bucket != bucket:
                    continue
                for result in iter_shard(root, info, strict=True):
                    latest[result.zone.to_text()] = result

            rows = sorted(
                ((zone_key64(zone), zone, result) for zone, result in latest.items()),
                key=lambda item: (item[0], item[1]),
            )
            files = BucketFiles(bucket)
            data_path = tmp_dir / files.data
            meta_path = tmp_dir / files.meta
            idx_path = tmp_dir / files.idx

            data_offset = 0
            meta_offset = 0
            idx_rows = []
            with open(data_path, "w", encoding="utf-8", newline="\n") as data_fp, open(
                meta_path, "w", encoding="utf-8", newline="\n"
            ) as meta_fp:
                for key64, zone, result in rows:
                    line = canonical_record_line(result)
                    data_fp.write(line)
                    data_fp.write("\n")

                    assessment = assess_zone(result, now)
                    attribution = db.identify(result.delegation_ns)
                    operator = (
                        UNKNOWN_OPERATOR if attribution.multi else attribution.primary
                    )
                    signal_operator = None
                    if assessment.signal_outcome != SignalOutcome.NO_SIGNAL:
                        signal_operator = signal_operator_for(result, db, operator)
                    flags = _record_flags(result, assessment, attribution.multi)

                    meta = _meta_row(
                        zone,
                        assessment,
                        operator,
                        signal_operator,
                        flags,
                        data_offset,
                        len(line) + 1,
                    )
                    meta_line = json.dumps(meta, separators=(",", ":"), sort_keys=True)
                    meta_fp.write(meta_line)
                    meta_fp.write("\n")
                    idx_rows.append((key64, meta_offset, len(meta_line) + 1))

                    columns["zone"].append(zone)
                    columns["status"].append(assessment.status.value)
                    columns["eligibility"].append(assessment.eligibility.value)
                    columns["outcome"].append(assessment.signal_outcome.value)
                    columns["operator"].append(operator)
                    columns["flags"].append(str(flags))
                    zones_hasher.update(zone.encode("ascii", "backslashreplace"))
                    zones_hasher.update(b"\n")

                    data_offset += len(line) + 1
                    meta_offset += len(meta_line) + 1
                    total_records += 1

            with open(idx_path, "wb") as idx_fp:
                for key64, offset, length in idx_rows:
                    idx_fp.write(IDX_ROW.pack(key64, offset, length))

            bucket_entries.append(
                {
                    "bucket": bucket,
                    "records": len(rows),
                    "data": files.data,
                    "data_sha256": _sha256_file(data_path),
                    "meta": files.meta,
                    "meta_sha256": _sha256_file(meta_path),
                    "idx": files.idx,
                    "idx_sha256": _sha256_file(idx_path),
                }
            )
        span["records"] = total_records

    column_entries: Dict[str, Dict[str, str]] = {}
    for name in COLUMN_NAMES:
        path = tmp_dir / COLUMNS_DIR / f"{name}.col"
        body = "".join(value + "\n" for value in columns[name])
        path.write_text(body, encoding="utf-8", newline="\n")
        column_entries[name] = {
            "path": f"{COLUMNS_DIR}/{name}.col",
            "sha256": _sha256_file(path),
        }

    snapshot_obj = {
        "version": SNAPSHOT_VERSION,
        "seed": manifest.seed,
        "scale": manifest.scale,
        "num_buckets": manifest.num_shards,
        "records": total_records,
        "zones_digest": zones_hasher.hexdigest(),
        "operators_attributed": operator_db is not None,
        "validation_now": now,
        "buckets": bucket_entries,
        "columns": column_entries,
    }
    if manifest.epoch is not None:
        snapshot_obj["epoch"] = manifest.epoch
    (tmp_dir / SNAPSHOT_FILENAME).write_text(
        json.dumps(snapshot_obj, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # The pin is the one layout-specific file: which manifest generation
    # this snapshot reflects (see the module docstring).
    pin_obj = {
        "manifest_generation": manifest_generation(manifest),
        "manifest_records": manifest.records,
        "manifest_status": manifest.status,
        "built_unix": time.time(),
    }
    (tmp_dir / PIN_FILENAME).write_text(
        json.dumps(pin_obj, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    if final_dir.exists():
        shutil.rmtree(final_dir)
    tmp_dir.replace(final_dir)

    if telemetry.enabled:
        telemetry.count("query.index_builds")
        telemetry.count("query.index_records", total_records)
    return load_snapshot(root)


def _sha256_file(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def load_snapshot(store_root: Path) -> SnapshotInfo:
    """Open a store's snapshot metadata (raises :class:`QueryError`
    when no index has been built)."""
    root = Path(store_root)
    path = snapshot_path(root)
    if not path.exists():
        raise QueryError(
            f"no query index at {root} — build one with: repro-dnssec query index --dir {root}"
        )
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise QueryError(f"snapshot metadata at {root} is not valid JSON: {exc}") from exc
    if obj.get("version") != SNAPSHOT_VERSION:
        raise QueryError(f"unsupported snapshot version {obj.get('version')!r}")
    pin: Dict[str, Any] = {}
    if pin_path(root).exists():
        try:
            pin = json.loads(pin_path(root).read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            pin = {}
    return SnapshotInfo(
        root=root,
        version=obj["version"],
        seed=obj["seed"],
        scale=obj["scale"],
        num_buckets=obj["num_buckets"],
        records=obj["records"],
        zones_digest=obj["zones_digest"],
        operators_attributed=obj["operators_attributed"],
        validation_now=obj["validation_now"],
        epoch=obj.get("epoch"),
        buckets=obj["buckets"],
        columns=obj["columns"],
        pin=pin,
    )


def verify_snapshot(store_root: Path) -> SnapshotInfo:
    """Re-hash every snapshot file against its recorded digest."""
    snapshot = load_snapshot(store_root)
    base = index_dir(snapshot.root)
    for entry in snapshot.buckets:
        for path_key, digest_key in (
            ("data", "data_sha256"),
            ("meta", "meta_sha256"),
            ("idx", "idx_sha256"),
        ):
            target = base / entry[path_key]
            if not target.exists():
                raise QueryError(f"snapshot references missing file {entry[path_key]}")
            if _sha256_file(target) != entry[digest_key]:
                raise QueryError(f"snapshot file {entry[path_key]} does not match its digest")
    for name, entry in snapshot.columns.items():
        target = base / entry["path"]
        if not target.exists():
            raise QueryError(f"snapshot references missing column {entry['path']}")
        if _sha256_file(target) != entry["sha256"]:
            raise QueryError(f"snapshot column {name} does not match its digest")
    return snapshot


def load_fresh_zones(store_root: Path, manifest: CampaignManifest) -> Optional[List[str]]:
    """The zone column, iff a snapshot exists and pins *manifest*'s
    exact generation — the fast path behind :meth:`StoreReader.zones`.
    Returns ``None`` (fall back to streaming) otherwise.
    """
    try:
        snapshot = load_snapshot(store_root)
    except QueryError:
        return None
    if not snapshot.is_fresh(manifest):
        return None
    column = snapshot.column_path("zone")
    if not column.exists():
        return None
    return column.read_text(encoding="utf-8").splitlines()
