"""repro.query — indexed snapshots + the read-serving plane.

Two halves:

* :mod:`repro.query.snapshot` — ``build_index`` compacts a campaign
  store into a deterministic, versioned snapshot under ``<store>/index/``
  (sorted per-bucket offset indexes + columnar sidecars), byte-identical
  for a given record set regardless of how the segments were laid down;
* :mod:`repro.query.service` — ``QueryService`` serves point lookups
  and scans from that snapshot at O(log n) seeks per uncached lookup,
  stale-but-consistent while a campaign keeps appending.
"""

from repro.query.snapshot import (
    FLAG_CDS_DELETE,
    FLAG_HAS_CDS,
    FLAG_HAS_SIGNAL,
    FLAG_MULTI_OPERATOR,
    FLAG_RESOLVED,
    FLAG_SAMPLED,
    QueryError,
    SnapshotInfo,
    build_index,
    index_dir,
    load_snapshot,
    manifest_generation,
    verify_snapshot,
    zone_key64,
)
from repro.query.service import QueryService, ZoneStatusView

__all__ = [
    "FLAG_CDS_DELETE",
    "FLAG_HAS_CDS",
    "FLAG_HAS_SIGNAL",
    "FLAG_MULTI_OPERATOR",
    "FLAG_RESOLVED",
    "FLAG_SAMPLED",
    "QueryError",
    "QueryService",
    "SnapshotInfo",
    "ZoneStatusView",
    "build_index",
    "index_dir",
    "load_snapshot",
    "manifest_generation",
    "verify_snapshot",
    "zone_key64",
    "zone_status_dashboard",
]


def __getattr__(name):
    if name == "zone_status_dashboard":
        from repro.reports.dashboard import zone_status_dashboard

        return zone_status_dashboard
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
