"""repro.scenarios — key-transition and adversarial operator plane.

A :class:`ScenarioSpec` enables two orthogonal families of ecosystem
diversity on top of the calibrated paper population:

* **Key transitions** ("From the Beginning: Key Transitions", Osterweil
  et al.): zones born mid-rollover (pre-publish, double-DS, algorithm
  rollover) or stuck in the classic mishap states (stranded KSK,
  dangling DS), plus hash-chosen rollover lifecycles that unfold across
  monitor epochs via the windowed ``roll_key`` / ``advance_rollover``
  event pair in :mod:`repro.ecosystem.mutate`.
* **Adversarial operators** (the DNS-abuse taxonomy): spoofed and
  unsigned signal chains, split-brain CDS, algorithm-downgrade CDS, and
  DarkHost-style unattributable NS sets — everything a conformant
  RFC 9615 parental agent must reject, quantified by the bootstrap
  security table (:mod:`repro.reports.table_security`).

Every decision the plane makes is a pure BLAKE2b hash of
``(seed, zone, step)`` in the chaos-plane idiom
(:func:`repro.chaos.retry.stable_unit`), so scenario-enabled worlds are
byte-identical across serial / ``workers=N`` / ``in_flight=N`` /
kill-and-resume layouts.
"""

from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.transitions import (
    ADVANCE_EVENT,
    KIND_ALGORITHM,
    KIND_DANGLING_DS,
    KIND_DOUBLE_DS,
    KIND_PREPUBLISH,
    KIND_STRANDED_KSK,
    PHASE_FOR_KIND,
    RECOVERABLE_PHASES,
    ROLLOVER_KINDS,
    choose_roll_kind,
    scenario_cells,
)

__all__ = [
    "ScenarioSpec",
    "ADVANCE_EVENT",
    "KIND_ALGORITHM",
    "KIND_DANGLING_DS",
    "KIND_DOUBLE_DS",
    "KIND_PREPUBLISH",
    "KIND_STRANDED_KSK",
    "PHASE_FOR_KIND",
    "RECOVERABLE_PHASES",
    "ROLLOVER_KINDS",
    "choose_roll_kind",
    "scenario_cells",
]
