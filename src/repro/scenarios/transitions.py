"""Key-transition vocabulary and the scenario population cells.

The rollover lifecycle follows RFC 7344/RFC 6781 practice and the
states catalogued by "From the Beginning: Key Transitions":

* ``prepublish`` — the successor DNSKEY is published next to the
  incumbent, the zone still signs with the incumbent, the parent DS
  still names only the incumbent.
* ``double_ds``  — both DNSKEYs are published and the parent carries
  DS for *both* (the conservative remove-then-add window of RFC 7344
  §6.1: the chain of trust never breaks mid-roll).
* ``double_sig`` — an algorithm rollover: both algorithms' DNSKEYs are
  published, the zone is signed with both, and the parent carries DS
  for both (RFC 6781 §4.1.4).  The wild's canonical roll is
  RSASHA256 → ECDSAP256; we model it as ED25519 → ECDSAP256SHA256
  because RSA key generation cannot be seeded (see
  :func:`repro.dnssec.algorithms.generate_private_key`) and scenario
  worlds must rebuild byte-identically on every layout.
* ``stranded``   — the mishap state: the zone moved to the successor
  key but the parent DS was never updated (a stranded KSK — the chain
  validates against nothing and the zone goes bogus).
* ``dangling``   — the other mishap: the operator unsigned the zone
  but the parent DS remains (a dangling DS).

A kind names the transition being performed; a phase names the
observable mid-roll state.  Clean kinds advance to completion via the
forced ``advance_rollover`` event one epoch after entering the window;
mishap kinds are terminal until an operator (or the chaos of the event
stream) is taught to repair them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.chaos.retry import stable_unit

if TYPE_CHECKING:  # pragma: no cover
    from repro.ecosystem.spec import Cell
    from repro.scenarios.spec import ScenarioSpec

# Transition kinds (what the operator is doing).
KIND_PREPUBLISH = "prepublish"
KIND_DOUBLE_DS = "double_ds"
KIND_ALGORITHM = "algorithm"
KIND_STRANDED_KSK = "stranded_ksk"
KIND_DANGLING_DS = "dangling_ds"

ROLLOVER_KINDS = (
    KIND_PREPUBLISH,
    KIND_DOUBLE_DS,
    KIND_ALGORITHM,
    KIND_STRANDED_KSK,
    KIND_DANGLING_DS,
)

# Mid-roll phases (what a scanner observes).
PHASE_PREPUBLISH = "prepublish"
PHASE_DOUBLE_DS = "double_ds"
PHASE_DOUBLE_SIG = "double_sig"
PHASE_STRANDED = "stranded"
PHASE_DANGLING = "dangling"

PHASE_FOR_KIND = {
    KIND_PREPUBLISH: PHASE_PREPUBLISH,
    KIND_DOUBLE_DS: PHASE_DOUBLE_DS,
    KIND_ALGORITHM: PHASE_DOUBLE_SIG,
    KIND_STRANDED_KSK: PHASE_STRANDED,
    KIND_DANGLING_DS: PHASE_DANGLING,
}

#: Phases the forced ``advance_rollover`` event completes next epoch.
RECOVERABLE_PHASES = frozenset({PHASE_PREPUBLISH, PHASE_DOUBLE_DS, PHASE_DOUBLE_SIG})

#: The event kind that closes a rollover window (emitted with
#: probability 1, ahead of the rate-gated kinds, so a window lasts
#: exactly one epoch regardless of rates or layout).
ADVANCE_EVENT = "advance_rollover"

# Signing-algorithm vocabulary for ZoneSpec.algorithm ("" = the
# historical ED25519 default, kept blank so pre-scenario specs and key
# seeds are byte-identical).  Only the deterministically-derivable
# algorithms appear; an algorithm roll flips between them.
ALGORITHM_ROLL_TARGET = {
    "": "ecdsap256",
    "ed25519": "ecdsap256",
    "ecdsap256": "ed25519",
}

_CLEAN_KINDS = (KIND_DOUBLE_DS, KIND_PREPUBLISH, KIND_ALGORITHM)


def choose_roll_kind(
    scenarios: Optional["ScenarioSpec"], zone: str, generation: int
) -> str:
    """Which transition a ``roll_key`` event performs for *zone*.

    Without a scenario spec every roll is the conservative double-DS
    window (the RFC 7344 fix for the old atomic swap).  With
    transitions enabled, the kind is a pure BLAKE2b hash of
    ``(scenario seed, zone, key generation)`` — layout-independent by
    construction, mishaps included.
    """
    if scenarios is None or not scenarios.transitions:
        return KIND_DOUBLE_DS
    draw = stable_unit("scenario", scenarios.seed, zone, generation, "roll_kind")
    mishap = min(max(scenarios.mishap, 0.0), 1.0)
    if draw < mishap:
        flip = stable_unit("scenario", scenarios.seed, zone, generation, "mishap")
        return KIND_STRANDED_KSK if flip < 0.5 else KIND_DANGLING_DS
    if mishap >= 1.0:
        return KIND_STRANDED_KSK
    clean = (draw - mishap) / (1.0 - mishap)
    return _CLEAN_KINDS[min(int(clean * len(_CLEAN_KINDS)), len(_CLEAN_KINDS) - 1)]


def scenario_cells(spec: "ScenarioSpec") -> List["Cell"]:
    """The extra population cells a scenario-enabled world carries.

    Appended *after* the scaled paper cells (like the DarkHost
    unresolved cell), so the honest population's zone labels, suffix
    draws, and host assignments are untouched — a scenario world is the
    honest world plus these zones, nothing reshuffled.
    """
    from repro.ecosystem.spec import Cell, CdsScenario, SignalScenario, StatusScenario

    cells: List[Cell] = []
    count = max(1, int(spec.intensity))

    def add(operator, status, cds, signal, kind: str = "") -> None:
        cells.append(
            Cell(
                operator=operator,
                status=status,
                cds=cds,
                signal=signal,
                count=count,
                rollover_kind=kind,
            )
        )

    if spec.transitions:
        # KeyCycle: an honest operator forever mid-rollover, one cell
        # per catalogued transition state.
        add("KeyCycle", StatusScenario.SECURE, CdsScenario.OK, SignalScenario.NONE, KIND_PREPUBLISH)
        add("KeyCycle", StatusScenario.SECURE, CdsScenario.OK, SignalScenario.NONE, KIND_DOUBLE_DS)
        add("KeyCycle", StatusScenario.SECURE, CdsScenario.OK, SignalScenario.NONE, KIND_ALGORITHM)
        add("KeyCycle", StatusScenario.SECURE, CdsScenario.OK, SignalScenario.NONE, KIND_STRANDED_KSK)
        add("KeyCycle", StatusScenario.SECURE, CdsScenario.NONE, SignalScenario.NONE, KIND_DANGLING_DS)
        # A signalling island caught inside its double-DS window: the
        # one transition a parental agent should still accept (its CDS
        # carries both keys, both matching published DNSKEYs).
        add("KeyCycle", StatusScenario.ISLAND, CdsScenario.OK, SignalScenario.OK, KIND_DOUBLE_DS)

    if spec.adversarial:
        # SpoofSign serves signal records whose RRSIGs are stripped —
        # off-path-injection lookalikes that must fail validation.
        add("SpoofSign", StatusScenario.ISLAND, CdsScenario.OK, SignalScenario.SPOOFED)
        # NullSign runs signal zones with no secure delegation at all.
        add("NullSign", StatusScenario.ISLAND, CdsScenario.OK, SignalScenario.UNSIGNED_CHAIN)
        # SplitBrain answers with a different CDS RRset on each NS.
        add("SplitBrain", StatusScenario.ISLAND, CdsScenario.INCONSISTENT, SignalScenario.OK)
        # DowngradeCo advertises an RSASHA1 CDS (algorithm downgrade).
        add("DowngradeCo", StatusScenario.ISLAND, CdsScenario.DOWNGRADE, SignalScenario.OK)
        # Phantom signals from NS hostnames no suffix rule attributes,
        # with a fabricated zone cut inside the signalling name.
        add("Phantom", StatusScenario.ISLAND, CdsScenario.OK, SignalScenario.ZONE_CUT)

    return cells
