"""The scenario plane's configuration leaf.

:class:`ScenarioSpec` follows the :class:`~repro.chaos.ChaosConfig`
conventions exactly: a frozen dataclass of numbers and booleans, a
``field=value,...`` CLI spec parser, and a non-default-only dict form
so store manifests and monitor configs stay byte-stable — a world
without scenarios serialises to *nothing at all*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.chaos.retry import _non_default_fields, _parse_fields


@dataclass(frozen=True)
class ScenarioSpec:
    """Knobs for the key-transition and adversarial operator plane.

    The spec is picklable (spawn workers carry it inside the
    :class:`~repro.monitor.MonitorSpec` in their ``WorkerSpec``) and a
    pure value: every scenario decision derives from ``(seed, zone,
    step)`` hashes, never from process state.
    """

    #: Seed for the scenario hash streams (independent of the world and
    #: monitor seeds, so the same world can host different transitions).
    seed: int = 1
    #: Populate key-transition cells and window rollover events.
    transitions: bool = True
    #: Populate the adversarial operator cells (spoofed / unsigned
    #: signal chains, split-brain CDS, downgrade CDS, phantom NS sets).
    adversarial: bool = True
    #: Zones per scenario cell (each transition phase and adversarial
    #: operator gets this many zones regardless of world scale).
    intensity: int = 2
    #: Probability that a windowed ``roll_key`` event turns into a
    #: rollover mishap (stranded KSK or dangling DS) instead of a clean
    #: transition.  Only consulted when ``transitions`` is on.
    mishap: float = 0.2

    @property
    def enabled(self) -> bool:
        return self.transitions or self.adversarial

    @classmethod
    def default(cls) -> "ScenarioSpec":
        return cls()

    @classmethod
    def from_spec(cls, spec: str) -> Optional["ScenarioSpec"]:
        """Parse a CLI ``--scenarios`` value.

        ``off``/``none`` → ``None``; ``default`` → every family on;
        otherwise ``field=value`` pairs over the dataclass fields
        (``seed=7,adversarial=1,transitions=0,intensity=3``).
        """
        text = spec.strip().lower()
        if text in ("off", "none", ""):
            return None
        if text == "default":
            return cls.default()
        return cls(**_parse_fields(cls, spec))

    def to_dict(self) -> Dict[str, Any]:
        """Non-default fields only (manifest byte-stability)."""
        return _non_default_fields(self)

    @classmethod
    def from_dict(cls, obj: Optional[Dict[str, Any]]) -> Optional["ScenarioSpec"]:
        if obj is None:
            return None
        return cls(
            seed=int(obj.get("seed", 1)),
            transitions=bool(obj.get("transitions", True)),
            adversarial=bool(obj.get("adversarial", True)),
            intensity=int(obj.get("intensity", 2)),
            mishap=float(obj.get("mishap", 0.2)),
        )
