"""The discrete-event engine: a heap of ``(fire_time, seq)`` events
driving cooperative per-zone tasks over a :class:`SimulatedClock`.

Concurrency model
-----------------
Each task runs on its own (daemon) thread, but *exactly one* thread is
runnable at any moment: the loop thread and the task threads hand
control back and forth through per-task events, so there is no true
parallelism and no data race — the threads are a mechanism for
suspending/resuming arbitrary Python call stacks (the scan hot path
stays plain synchronous code), not for speed.  Which task runs next is
decided solely by the event heap: events fire in ``(fire_time, seq)``
order, where ``seq`` is a global push counter — ties on the simulated
clock resolve FIFO.  The schedule is therefore a pure function of the
submitted work, independent of dict iteration order, PYTHONHASHSEED,
and OS thread scheduling.

Clock interception
------------------
While a loop runs, its clocks' ``advance(dt)`` inside a task becomes
"suspend until ``task.now + dt``" and ``now()`` answers the *task's*
local time; outside any task both fall back to the global frontier
(the latest fired event).  When the loop finishes, every intercepted
clock has advanced by the schedule's makespan — the overlapped campaign
duration.

No event ever fires in the past: tasks only push events at
``task.now + dt`` with ``dt >= 0`` and resume *at* the frontier, so the
fire times the heap pops are non-decreasing (checked, not assumed).
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple


class TaskCancelled(BaseException):
    """Raised inside a task at its suspension point when the loop is
    shut down before the task completes (e.g. ``stop_after`` closed the
    scan iterator).  A ``BaseException`` so ordinary ``except Exception``
    handlers in scan code cannot swallow the unwind."""


class Task:
    """One cooperative unit of work (one zone scan)."""

    __slots__ = (
        "index",
        "item",
        "now",
        "queries",
        "thread",
        "resume_evt",
        "cancelled",
        "finished",
        "value",
        "error",
    )

    def __init__(self, index: int, item: Any, start: float):
        self.index = index
        self.item = item
        self.now = start
        # Queries attributed to this task by SimulatedNetwork.query —
        # the per-zone ``queries_used`` accounting under concurrency
        # (a global counter delta would count other tasks' traffic).
        self.queries = 0
        self.thread: Optional[threading.Thread] = None
        self.resume_evt = threading.Event()
        self.cancelled = False
        self.finished = False
        self.value: Any = None
        self.error: Optional[BaseException] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else ("cancelled" if self.cancelled else "parked")
        return f"<Task #{self.index} t={self.now:.3f} {state}>"


class EventLoop:
    """Run up to *max_in_flight* tasks concurrently on simulated time.

    *clock* is the primary clock — the one whose reading defines the
    campaign duration (the rate-limiter clock).  *extra_clocks* are
    additionally intercepted so their advances suspend the task onto the
    same timeline (the network clock, when it is a separate object as on
    a parallel-worker scan machine).  All intercepted clocks advance by
    the schedule's makespan when the loop completes.

    Results from :meth:`map_iter` are yielded in **submission order**
    (out-of-order completions are buffered), so downstream consumers —
    store appends, checkpoints, progress events — observe exactly the
    sequence a serial scan would have produced.

    Subclasses may integrate external event sources (real sockets — see
    :class:`repro.wire.WireLoop`) through three hooks: :meth:`_poll_io`
    (drain completed I/O into the heap, called before every pop),
    :meth:`_wait_io` (block for I/O when the heap is empty but tasks are
    still parked; returning False means no I/O can arrive and the loop
    deadlocks), and :attr:`_strict_frontier` (False relaxes the
    monotonic-fire-time check, since I/O completions resume tasks in
    wire-arrival order, which may trail the simulated frontier).
    """

    #: When True (the default), an event firing before the frontier is a
    #: bug and raises; subclasses with external completions clamp instead.
    _strict_frontier = True

    def __init__(
        self,
        clock,
        max_in_flight: int = 1,
        extra_clocks: Iterable[Any] = (),
        trace: Optional[List[Tuple[float, int, int]]] = None,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.clock = clock
        self.max_in_flight = max_in_flight
        self._clocks = list(dict.fromkeys((clock, *extra_clocks)))
        # Optional event trace for the property-based suite: one
        # (fire_time, seq, task_index) tuple per fired event.
        self.trace = trace
        self.current_task: Optional[Task] = None
        self._heap: List[Tuple[float, int, Task]] = []
        self._seq = 0
        self._yielded = threading.Event()
        self._tasks: List[Task] = []
        self._running = 0
        self._frontier = 0.0
        self._base = 0.0
        self._installed = False
        self._clock_starts: List[float] = []
        # Counters surfaced as sched.* telemetry.
        self.tasks_started = 0
        self.events = 0
        self.gate_waits = 0
        self.in_flight_peak = 0
        self.queue_peak = 0

    # -- public API --------------------------------------------------------

    def map_iter(self, items: Iterable[Any], fn: Callable[[Any], Any]) -> Iterator[Any]:
        """Apply *fn* to every item, up to *max_in_flight* at a time,
        yielding results in submission order as they become ready."""
        if self._installed:
            raise RuntimeError("EventLoop is not reentrant")
        self._install()
        try:
            yield from self._drive(iter(items), fn)
        finally:
            self._cancel_unfinished()
            self._uninstall()

    def run(self, items: Iterable[Any], fn: Callable[[Any], Any]) -> List[Any]:
        """Eager form of :meth:`map_iter`."""
        return list(self.map_iter(items, fn))

    @property
    def frontier(self) -> float:
        """The latest fired event's time (the makespan so far)."""
        return self._frontier

    def gate(self) -> "Gate":
        from repro.sched.gate import Gate

        return Gate(self)

    # -- the event loop ----------------------------------------------------

    def _drive(self, it: Iterator[Any], fn: Callable[[Any], Any]) -> Iterator[Any]:
        pending = {}
        next_out = 0
        exhausted = False

        def admit(now: float) -> None:
            nonlocal exhausted
            while not exhausted and self._running < self.max_in_flight:
                try:
                    item = next(it)
                except StopIteration:
                    exhausted = True
                    return
                task = Task(len(self._tasks), item, now)
                self._tasks.append(task)
                self._running += 1
                self.tasks_started += 1
                if self._running > self.in_flight_peak:
                    self.in_flight_peak = self._running
                self._push(now, task)

        admit(self._base)
        while True:
            self._poll_io()
            if not self._heap:
                if self._running and self._wait_io():
                    continue
                break
            fire, seq, task = heapq.heappop(self._heap)
            if fire < self._frontier:
                if self._strict_frontier:
                    raise RuntimeError(
                        f"event for task #{task.index} fires at {fire:.6f}, "
                        f"before the frontier {self._frontier:.6f}"
                    )
                fire = self._frontier
            self.events += 1
            self._frontier = fire
            # Consumers between yields (sinks, progress events) read the
            # primary clock outside any task: answer the frontier.
            self.clock._now = fire
            if self.trace is not None:
                self.trace.append((fire, seq, task.index))
            self._run_slice(task, fn)
            if task.finished:
                self._running -= 1
                pending[task.index] = task
                admit(task.now)
                while next_out in pending:
                    done = pending.pop(next_out)
                    next_out += 1
                    if done.error is not None:
                        raise done.error
                    yield done.value
        if self._running:
            parked = [t.index for t in self._tasks if not t.finished]
            raise RuntimeError(
                f"scheduler deadlock: task(s) {parked} parked with an empty event queue"
            )

    # -- external-event hooks (overridden by repro.wire.WireLoop) ----------

    def _poll_io(self) -> None:
        """Drain externally-completed work into the heap (no-op here)."""

    def _wait_io(self) -> bool:
        """Block until external I/O makes a parked task runnable again.

        Returns True when at least one event was pushed (the loop
        retries), False when no external source exists — the base loop
        has none, so an empty heap with parked tasks is a deadlock.
        """
        return False

    def _run_slice(self, task: Task, fn: Optional[Callable[[Any], Any]] = None) -> None:
        """Resume *task* and block until it parks again or finishes."""
        self.current_task = task
        if task.thread is None:
            task.thread = threading.Thread(
                target=self._task_main,
                args=(task, fn),
                name=f"sched-task-{task.index}",
                daemon=True,
            )
            task.thread.start()
        else:
            task.resume_evt.set()
        self._yielded.wait()
        self._yielded.clear()
        self.current_task = None

    def _task_main(self, task: Task, fn: Callable[[Any], Any]) -> None:
        try:
            task.value = fn(task.item)
        except TaskCancelled:
            pass
        except BaseException as exc:  # noqa: BLE001 - handed to the consumer
            task.error = exc
        finally:
            task.finished = True
            self._yielded.set()

    # -- task-side suspension (called from task threads) -------------------

    def task_advance(self, seconds: float) -> None:
        """``clock.advance`` inside a task: sleep on simulated time."""
        task = self.current_task
        if task is None:  # pragma: no cover - clock guards this
            raise RuntimeError("task_advance outside a scheduled task")
        if task.cancelled:
            raise TaskCancelled()
        task.now += seconds
        self._push(task.now, task)
        self._park(task)

    def _park(self, task: Task) -> None:
        """Hand control to the loop thread; return when resumed."""
        task.resume_evt.clear()
        self._yielded.set()
        task.resume_evt.wait()
        if task.cancelled:
            raise TaskCancelled()

    def _push(self, fire: float, task: Task) -> None:
        heapq.heappush(self._heap, (fire, self._seq, task))
        self._seq += 1
        if len(self._heap) > self.queue_peak:
            self.queue_peak = len(self._heap)

    # -- clock interception ------------------------------------------------

    def _install(self) -> None:
        self._clock_starts = []
        for clock in self._clocks:
            if getattr(clock, "scheduler", None) is not None:
                raise RuntimeError("clock is already driven by another EventLoop")
            clock.scheduler = self
            self._clock_starts.append(clock._now)
        self._base = self._clocks[0]._now
        self._frontier = self._base
        self._installed = True

    def _uninstall(self) -> None:
        if not self._installed:
            return
        elapsed = self._frontier - self._base
        for clock, start in zip(self._clocks, self._clock_starts):
            clock.scheduler = None
            # Offsets between clocks are preserved: each advances by the
            # schedule's makespan, exactly as if the whole overlapped
            # scan had played out on it.
            clock._now = start + elapsed
        self._installed = False

    def _cancel_unfinished(self) -> None:
        """Unwind every live task (TaskCancelled at its suspension
        point) so generators/finally blocks run and threads exit."""
        for task in self._tasks:
            if task.finished:
                continue
            if task.thread is None:
                # Admitted but never started: nothing to unwind.
                task.finished = True
                continue
            task.cancelled = True
            self._run_slice(task)
