"""Deterministic discrete-event scheduling for concurrent scans.

The paper's YoDNS deployment finishes 287.6 M zones in about a month
only because thousands of queries are in flight at once; our simulated
scanner used to serialize every zone on the :class:`SimulatedClock`, so
simulated campaign duration was the *sum* of per-zone latency instead of
the makespan of an overlapped schedule.

:mod:`repro.sched` closes that gap without giving up determinism:

* :class:`EventLoop` — a discrete-event engine over a heap of
  ``(fire_time, seq)`` events.  Each zone scan becomes a cooperative
  task; every ``clock.advance`` inside a task suspends it until the
  simulated fire time, so up to ``max_in_flight`` zones overlap their
  query RTTs, retry backoffs, and rate-limiter waits.  Exactly one task
  ever runs at a time and the interleaving is decided solely by the
  event heap (FIFO on ties), never by the OS scheduler — same inputs,
  same schedule, on any machine.
* :class:`Gate` / :class:`FlightMap` — single-flight admission for the
  scanner's shared memo caches, so a key is computed once no matter how
  many in-flight tasks need it (mirroring what a sequential scan's
  cache would do).
* :exc:`TaskCancelled` — raised at a task's suspension point when the
  scan is abandoned early (``stop_after`` / a closed iterator).

Determinism invariant (pinned by ``tests/test_sched.py``): a campaign
run with any ``in_flight`` renders Tables 1–3 and Figure 1 byte-identical
to the sequential campaign at the same seed/scale.
"""

from repro.sched.gate import FlightMap, Gate, active_loop
from repro.sched.loop import EventLoop, Task, TaskCancelled

__all__ = [
    "EventLoop",
    "FlightMap",
    "Gate",
    "Task",
    "TaskCancelled",
    "active_loop",
]
