"""Single-flight coordination between in-flight tasks.

The scanner's memo caches (addresses, signal-zone info, trust chains)
and the resolver's address lookups assume "first caller computes, later
callers hit the cache".  Under the event loop, two tasks can need the
same key while neither has finished computing it; without coordination
both would compute — doubling the query stream and breaking the
byte-identity invariant against the sequential scan.

A :class:`Gate` is the primitive: tasks park on it, and whoever holds
it wakes them all at the release time (a waiter never wakes before the
releaser's clock — time only moves forward).  :class:`FlightMap` builds
the per-key single-flight discipline on top: the first task to claim a
key computes and releases; every other task waits, then re-checks the
caller's cache — observing exactly the hit a sequential second caller
would have observed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sched.loop import EventLoop, Task, TaskCancelled


def active_loop(clock) -> Optional[EventLoop]:
    """The EventLoop driving *clock*, if the caller is inside one of its
    tasks; None in plain sequential code (including loop-side consumers)."""
    scheduler = getattr(clock, "scheduler", None)
    if scheduler is not None and scheduler.current_task is not None:
        return scheduler
    return None


class Gate:
    """A one-shot wake-up: tasks wait, the owner releases.

    Waiters are woken strictly in the order they arrived (FIFO — their
    wake events are pushed in arrival order at the same fire time, and
    the heap breaks ties by push sequence), each with its clock moved up
    to the release instant.
    """

    __slots__ = ("_loop", "_waiters", "released")

    def __init__(self, loop: EventLoop):
        self._loop = loop
        self._waiters: List[Task] = []
        self.released = False

    def wait(self) -> None:
        """Park the calling task until :meth:`release`."""
        loop = self._loop
        task = loop.current_task
        if task is None:
            raise RuntimeError("Gate.wait() outside a scheduled task")
        if self.released:
            return
        if task.cancelled:
            raise TaskCancelled()
        loop.gate_waits += 1
        self._waiters.append(task)
        loop._park(task)

    def release(self) -> None:
        """Wake every waiter at the releaser's current simulated time."""
        self.released = True
        loop = self._loop
        owner = loop.current_task
        now = owner.now if owner is not None else loop.frontier
        for waiter in self._waiters:
            if now > waiter.now:
                waiter.now = now
            loop._push(waiter.now, waiter)
        self._waiters.clear()


class _Claim:
    """Context manager held by the task that owns a key's computation."""

    __slots__ = ("_gates", "_key", "_gate")

    def __init__(self, gates: Dict[Any, Gate], key: Any, gate: Gate):
        self._gates = gates
        self._key = key
        self._gate = gate

    def __enter__(self) -> "_Claim":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Released on success *and* on failure: a waiter re-checks the
        # cache and, finding it still cold, claims the key itself —
        # sequential retry semantics, never a stuck gate.
        self._gates.pop(self._key, None)
        self._gate.release()
        return False


class _NoClaim:
    """Truthy no-op claim for sequential (loop-less) callers."""

    __slots__ = ()

    def __enter__(self) -> "_NoClaim":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NO_CLAIM = _NoClaim()


class FlightMap:
    """Per-key single-flight admission.

    Usage pattern (the caller owns the cache)::

        while True:
            value = cache.get(key)
            if value is not None:
                return value                      # hit (possibly after a wait)
            claim = flights.claim(active_loop(clock), key)
            if claim is None:
                continue                          # waited; re-check the cache
            with claim:
                value = compute()
                cache[key] = value
                return value

    Outside a loop ``claim`` always returns a no-op claim, so the
    sequential hot path pays one ``None`` check and nothing else.
    """

    __slots__ = ("_gates",)

    def __init__(self):
        self._gates: Dict[Any, Gate] = {}

    def claim(self, loop: Optional[EventLoop], key: Any):
        """Claim *key* for computation.

        Returns a context manager when the caller should compute (it
        releases the key on exit), or ``None`` after having waited for
        another task's computation — the caller then re-checks its cache.
        """
        if loop is None:
            return _NO_CLAIM
        gate = self._gates.get(key)
        if gate is None:
            gate = Gate(loop)
            self._gates[key] = gate
            return _Claim(self._gates, key, gate)
        gate.wait()
        return None
