"""Longitudinal diffing of two stored campaigns.

The paper's headline story is change over time: zones that were
insecure islands get bootstrapped into the chain of trust, operators
turn signals on (and occasionally break them).  Given two stores —
typically the same world scanned at different epochs, or before/after a
registry provisioning pass — this module reports membership churn and
per-zone classification transitions, computed from the *stored* scan
records through the same ``assess_zone`` judgement the live pipeline
uses.  It is the §4.4/evolution analogue over real persisted runs, not
the synthetic curves in :mod:`repro.ecosystem.evolution`.

Memory: one small enum triple is kept per zone (never the scan records
themselves), so diffing scales with the zone count, not the archive.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.bootstrap import INCORRECT_OUTCOMES, SignalOutcome, assess_zone
from repro.core.status import DnssecStatus
from repro.store.reader import StoreReader


@dataclass(frozen=True)
class ZoneClassification:
    """The per-zone verdict triple a diff compares."""

    status: DnssecStatus
    eligibility_value: str
    outcome: SignalOutcome


def classify_store(reader: StoreReader) -> Dict[str, ZoneClassification]:
    """Stream a store through ``assess_zone``; keep only the verdicts."""
    classes: Dict[str, ZoneClassification] = {}
    for result in reader.iter_results():
        assessment = assess_zone(result)
        classes[assessment.zone] = ZoneClassification(
            status=assessment.status,
            eligibility_value=assessment.eligibility.value,
            outcome=assessment.signal_outcome,
        )
    return classes


@dataclass
class CampaignDiff:
    """What changed between two stored campaigns."""

    old_root: str
    new_root: str
    old_zones: int = 0
    new_zones: int = 0
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    unchanged: int = 0
    changed: int = 0

    # (from → to) transition counters over zones present in both runs.
    status_transitions: Counter = field(default_factory=Counter)
    outcome_transitions: Counter = field(default_factory=Counter)

    # Named cohorts (zone lists, sorted) for the transitions the paper
    # narrates.
    unsigned_to_secured: List[str] = field(default_factory=list)
    bootstrapped: List[str] = field(default_factory=list)  # island → secured
    newly_secured: List[str] = field(default_factory=list)  # any → secured
    signal_regressions: List[str] = field(default_factory=list)  # correct → incorrect
    signal_repaired: List[str] = field(default_factory=list)  # incorrect → correct


def diff_stores(old: StoreReader, new: StoreReader) -> CampaignDiff:
    """Compare two stored campaigns zone by zone."""
    return diff_classifications(
        classify_store(old), classify_store(new), str(old.root), str(new.root)
    )


def diff_classifications(
    old_classes: Dict[str, ZoneClassification],
    new_classes: Dict[str, ZoneClassification],
    old_root: str = "",
    new_root: str = "",
) -> CampaignDiff:
    """Diff two classification maps directly.

    The monitoring plane uses this to compare *merged* views (each
    zone's latest verdict across a chain of delta campaigns) that no
    single store holds.
    """
    diff = CampaignDiff(
        old_root=old_root,
        new_root=new_root,
        old_zones=len(old_classes),
        new_zones=len(new_classes),
        added=sorted(set(new_classes) - set(old_classes)),
        removed=sorted(set(old_classes) - set(new_classes)),
    )
    for zone in sorted(set(old_classes) & set(new_classes)):
        before, after = old_classes[zone], new_classes[zone]
        if before == after:
            diff.unchanged += 1
            continue
        diff.changed += 1
        if before.status != after.status:
            diff.status_transitions[(before.status.value, after.status.value)] += 1
        if before.outcome != after.outcome:
            diff.outcome_transitions[(before.outcome.value, after.outcome.value)] += 1

        if after.status == DnssecStatus.SECURE and before.status != DnssecStatus.SECURE:
            diff.newly_secured.append(zone)
            if before.status == DnssecStatus.UNSIGNED:
                diff.unsigned_to_secured.append(zone)
            elif before.status == DnssecStatus.ISLAND:
                diff.bootstrapped.append(zone)
        if before.outcome == SignalOutcome.CORRECT and after.outcome in INCORRECT_OUTCOMES:
            diff.signal_regressions.append(zone)
        if before.outcome in INCORRECT_OUTCOMES and after.outcome == SignalOutcome.CORRECT:
            diff.signal_repaired.append(zone)
    return diff


def _render_transitions(title: str, counter: Counter) -> List[str]:
    lines = [f"{title}:"]
    if not counter:
        lines.append("  (none)")
        return lines
    for (before, after), count in sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {before:>24} -> {after:<28} {count}")
    return lines


def render_diff(diff: CampaignDiff, examples: int = 5) -> str:
    """Human-readable longitudinal report."""
    lines = [
        f"campaign diff: {diff.old_root} -> {diff.new_root}",
        f"zones: {diff.old_zones} -> {diff.new_zones} "
        f"(+{len(diff.added)} added, -{len(diff.removed)} removed, "
        f"{diff.changed} reclassified, {diff.unchanged} unchanged)",
        "",
    ]
    lines.extend(_render_transitions("status transitions", diff.status_transitions))
    lines.append("")
    lines.extend(_render_transitions("signal-outcome transitions", diff.outcome_transitions))

    def cohort(label: str, zones: List[str]) -> None:
        if not zones:
            return
        shown = ", ".join(zones[:examples])
        more = f" (+{len(zones) - examples} more)" if len(zones) > examples else ""
        lines.append(f"{label}: {len(zones)} — {shown}{more}")

    lines.append("")
    cohort("secured via bootstrap (island -> secured)", diff.bootstrapped)
    cohort("unsigned -> secured", diff.unsigned_to_secured)
    cohort("signal regressions (correct -> incorrect)", diff.signal_regressions)
    cohort("signal repaired (incorrect -> correct)", diff.signal_repaired)
    return "\n".join(lines)
