"""Append-only, sharded scan-result storage.

The paper archived every DNS message of a month-long scan (6.5 TiB,
App. D) and analysed offline.  A flat file does not survive that shape
of campaign: a crash loses everything since the last full dump, and a
re-analysis must read one giant stream.  This module stores results as
immutable *shard segments* instead:

* records are routed to one of ``num_shards`` buckets by a stable hash
  of the zone name, so any later parallel consumer (a re-analysis
  fleet, a per-bucket merge) can partition work without coordination;
* each checkpoint seals the buffered records of a bucket into one new
  segment file, written crash-safely — temp file in the same directory,
  flush + fsync, atomic rename, directory fsync;
* segments are never modified after commit; the campaign manifest
  (:mod:`repro.store.manifest`) lists the committed segments with
  record counts and SHA-256 content digests, which is what makes a
  half-written file detectable and ignorable.

Segments are JSON-lines (:mod:`repro.scanner.serialize`), optionally
gzip-compressed with deterministic framing so identical record streams
give identical digests.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.scanner.results import ZoneScanResult
from repro.scanner.serialize import (
    LoadStats,
    dump_results,
    load_results,
    open_results_read,
    open_results_write,
)

SHARD_DIR = "shards"


class StoreError(Exception):
    """A campaign store is missing, malformed, or inconsistent."""


class ShardCorruption(StoreError):
    """A committed shard's bytes no longer match its manifest digest."""


def shard_for_zone(zone: str, num_shards: int) -> int:
    """Stable bucket index for a zone name.

    SHA-256 over the lowercased dotted name — stable across processes,
    platforms, and Python versions (unlike ``hash()``), so a resumed or
    re-opened campaign routes every zone to the same bucket.
    """
    digest = hashlib.sha256(zone.lower().encode("ascii", "backslashreplace")).digest()
    return int.from_bytes(digest[:4], "big") % num_shards


@dataclass(frozen=True)
class ShardInfo:
    """Manifest entry for one committed, immutable shard segment."""

    path: str  # POSIX path relative to the store root
    bucket: int  # zone-hash bucket the records belong to
    sequence: int  # global commit order (checkpoint counter)
    records: int
    sha256: str  # digest of the file bytes as committed
    compressed: bool

    def to_obj(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "bucket": self.bucket,
            "sequence": self.sequence,
            "records": self.records,
            "sha256": self.sha256,
            "compressed": self.compressed,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "ShardInfo":
        return cls(
            path=obj["path"],
            bucket=obj["bucket"],
            sequence=obj["sequence"],
            records=obj["records"],
            sha256=obj["sha256"],
            compressed=obj["compressed"],
        )


def shard_filename(bucket: int, sequence: int, compressed: bool) -> str:
    suffix = ".jsonl.gz" if compressed else ".jsonl"
    return f"b{bucket:03d}-{sequence:06d}{suffix}"


def fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_shard(
    root: Path,
    bucket: int,
    sequence: int,
    results: Iterable[ZoneScanResult],
    compress: bool = True,
    locations: Optional[List[Tuple[str, int, int]]] = None,
) -> ShardInfo:
    """Commit *results* as one immutable shard segment.

    The bytes land in a temp file first; only after flush + fsync is it
    renamed into place (atomic on POSIX), then the directory entry is
    fsynced.  A crash at any point leaves either no file or a stray
    ``*.tmp`` — never a half-written segment under the final name.

    When *locations* is a list it receives one ``(zone, offset, length)``
    tuple per committed record — the segment offsets exposed at commit
    time, so an index builder can address records without re-reading
    the segment (offsets are within the decompressed stream).
    """
    shard_dir = root / SHARD_DIR
    shard_dir.mkdir(parents=True, exist_ok=True)
    name = shard_filename(bucket, sequence, compress)
    final = shard_dir / name
    tmp = shard_dir / (name + ".tmp")
    fp = open_results_write(str(tmp), compress=compress)
    try:
        count = dump_results(results, fp, locations=locations)
        fp.flush()
    finally:
        fp.close()
    # fsync the committed bytes before the rename makes them visible.
    with open(tmp, "rb") as raw:
        os.fsync(raw.fileno())
        digest = hashlib.sha256(raw.read()).hexdigest()
    os.replace(tmp, final)
    fsync_dir(shard_dir)
    return ShardInfo(
        path=f"{SHARD_DIR}/{name}",
        bucket=bucket,
        sequence=sequence,
        records=count,
        sha256=digest,
        compressed=compress,
    )


def iter_shard(
    root: Path,
    info: ShardInfo,
    strict: bool = False,
    stats: Optional[LoadStats] = None,
) -> Iterator[ZoneScanResult]:
    """Stream one shard's records (gzip auto-detected by magic bytes)."""
    path = root / info.path
    if not path.exists():
        raise StoreError(f"manifest references missing shard {info.path}")
    with open_results_read(str(path)) as fp:
        yield from load_results(fp, strict=strict, stats=stats)


def read_record_at(root: Path, path: str, offset: int, length: int) -> ZoneScanResult:
    """Read one record by its commit-time ``(offset, length)`` location.

    *path* is a store-relative segment (or index data file) path.  For
    plain JSONL this is a single seek + read; for gzip segments the
    offset addresses the decompressed stream, so the file is
    decompressed up to *offset* (still no JSON decoding of earlier
    records — the dominant cost at scale).
    """
    import json as _json

    from repro.scanner.serialize import result_from_obj

    target = root / path
    if not target.exists():
        raise StoreError(f"cannot read record: missing file {path}")
    with open_results_read(str(target)) as fp:
        fp.seek(offset)
        line = fp.read(length)
    return result_from_obj(_json.loads(line))


def verify_shard(root: Path, info: ShardInfo) -> None:
    """Raise :class:`ShardCorruption` unless the shard's bytes match the
    digest recorded at commit time."""
    path = root / info.path
    if not path.exists():
        raise StoreError(f"manifest references missing shard {info.path}")
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    if digest != info.sha256:
        raise ShardCorruption(
            f"shard {info.path}: digest {digest[:12]}… != manifest {info.sha256[:12]}…"
        )


def orphan_files(root: Path, known: Iterable[ShardInfo]) -> List[Path]:
    """Files in the shard directory the manifest does not reference —
    debris from a crash between segment commit and manifest update."""
    shard_dir = root / SHARD_DIR
    if not shard_dir.exists():
        return []
    referenced = {root / info.path for info in known}
    return sorted(p for p in shard_dir.iterdir() if p.is_file() and p not in referenced)
