"""The campaign manifest: one JSON document that *is* the store's truth.

Only records reachable from the manifest exist.  Shard segments are
committed first, then the manifest is rewritten (atomically, same
temp + fsync + rename discipline) to reference them — so a crash
between the two steps leaves orphan segment files that are simply
ignored (and swept on the next open), and the manifest can never name
a partial shard.

The manifest also pins the campaign's identity — seed, scale, and the
scan configuration — so a resume cannot silently mix results from two
different worlds, and a diff can refuse to compare apples to oranges.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.store.shards import ShardInfo, StoreError, fsync_dir, verify_shard

MANIFEST_FILENAME = "manifest.json"
FORMAT_VERSION = 1

STATUS_IN_PROGRESS = "in-progress"
STATUS_COMPLETE = "complete"


@dataclass
class CampaignManifest:
    """Everything needed to validate, resume, and re-analyse a campaign."""

    seed: int
    scale: float
    num_shards: int
    compress: bool
    config: Dict[str, Any] = field(default_factory=dict)
    status: str = STATUS_IN_PROGRESS
    zones_total: Optional[int] = None  # planned scan-list size, if known
    shards: List[ShardInfo] = field(default_factory=list)
    created: float = field(default_factory=time.time)
    updated: float = field(default_factory=time.time)
    version: int = FORMAT_VERSION
    # Monitoring-plane identity: which simulated week this campaign
    # observed, and which epoch it is a delta against (None on the
    # baseline epoch 0; both None on plain, non-monitored campaigns —
    # such manifests serialise byte-identically to the pre-epoch format).
    epoch: Optional[int] = None
    parent_epoch: Optional[int] = None

    @property
    def records(self) -> int:
        """Zones durably persisted (committed segments only)."""
        return sum(info.records for info in self.shards)

    @property
    def complete(self) -> bool:
        return self.status == STATUS_COMPLETE

    @property
    def next_sequence(self) -> int:
        return max((info.sequence for info in self.shards), default=-1) + 1

    def to_obj(self) -> Dict[str, Any]:
        obj = {
            "version": self.version,
            "seed": self.seed,
            "scale": self.scale,
            "num_shards": self.num_shards,
            "compress": self.compress,
            "config": self.config,
            "status": self.status,
            "zones_total": self.zones_total,
            "created": self.created,
            "updated": self.updated,
            "shards": [info.to_obj() for info in self.shards],
        }
        if self.epoch is not None:
            obj["epoch"] = self.epoch
            obj["parent_epoch"] = self.parent_epoch
        return obj

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "CampaignManifest":
        version = obj.get("version")
        if version != FORMAT_VERSION:
            raise StoreError(f"unsupported manifest version {version!r}")
        return cls(
            seed=obj["seed"],
            scale=obj["scale"],
            num_shards=obj["num_shards"],
            compress=obj["compress"],
            config=dict(obj.get("config", {})),
            status=obj["status"],
            zones_total=obj.get("zones_total"),
            shards=[ShardInfo.from_obj(item) for item in obj["shards"]],
            created=obj.get("created", 0.0),
            updated=obj.get("updated", 0.0),
            version=version,
            epoch=obj.get("epoch"),
            parent_epoch=obj.get("parent_epoch"),
        )


def manifest_path(root: Path) -> Path:
    return Path(root) / MANIFEST_FILENAME


def save_manifest(root: Path, manifest: CampaignManifest) -> None:
    """Atomically rewrite the manifest (temp + fsync + rename)."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest.updated = time.time()
    tmp = root / (MANIFEST_FILENAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fp:
        json.dump(manifest.to_obj(), fp, indent=2, sort_keys=True)
        fp.write("\n")
        fp.flush()
        os.fsync(fp.fileno())
    os.replace(tmp, manifest_path(root))
    fsync_dir(root)


def load_manifest(root: Path, verify_digests: bool = False) -> CampaignManifest:
    """Open and validate a manifest.

    Always checks that every referenced shard file exists and that
    sequence numbers are unique; with *verify_digests* each shard's
    bytes are re-hashed against the recorded digest (reads everything —
    the paranoid open used before trusting a store for analysis).
    """
    root = Path(root)
    path = manifest_path(root)
    if not path.exists():
        raise StoreError(f"no campaign store at {root} (missing {MANIFEST_FILENAME})")
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StoreError(f"manifest at {root} is not valid JSON: {exc}") from exc
    manifest = CampaignManifest.from_obj(obj)

    sequences = [info.sequence for info in manifest.shards]
    if len(set(sequences)) != len(sequences):
        raise StoreError(f"manifest at {root} has duplicate shard sequence numbers")
    for info in manifest.shards:
        if info.bucket >= manifest.num_shards:
            raise StoreError(
                f"shard {info.path} claims bucket {info.bucket} "
                f"but the store has {manifest.num_shards} buckets"
            )
        target = root / info.path
        if not target.exists():
            raise StoreError(f"manifest references missing shard {info.path}")
        if verify_digests:
            verify_shard(root, info)
    return manifest
