"""Checkpointed campaign writing: persist-as-you-scan, resume after a crash.

A :class:`CampaignStore` is the progress sink a scanning campaign
writes into.  Results are buffered per zone-hash bucket and, every
``checkpoint_every`` records, sealed into immutable shard segments with
the manifest updated afterwards — so at any kill point the store holds
exactly the records of the last completed checkpoint, each one a fully
valid JSON line in a digest-verified segment.

Resume is a set difference: open the manifest, stream the stored zone
names into a skip-set, and scan only the remainder (the scanner's
``scan_iter(..., skip=...)`` path).  The deSEC dsbootstrap agent works
the same way against its table of known delegations — incremental
passes over whatever is not yet done.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.obs.telemetry import as_telemetry
from repro.scanner.results import ZoneScanResult
from repro.scanner.serialize import open_results_read
from repro.store.manifest import (
    STATUS_COMPLETE,
    STATUS_IN_PROGRESS,
    CampaignManifest,
    load_manifest,
    manifest_path,
    save_manifest,
)
from repro.store.shards import (
    ShardCorruption,
    StoreError,
    orphan_files,
    shard_for_zone,
    write_shard,
)

logger = logging.getLogger(__name__)

DEFAULT_NUM_SHARDS = 16
DEFAULT_CHECKPOINT_EVERY = 256


class CampaignStore:
    """Writable handle on a sharded campaign store."""

    def __init__(
        self,
        root: Path,
        manifest: CampaignManifest,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        telemetry=None,
        track_locations: bool = False,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.root = Path(root)
        self.manifest = manifest
        self.checkpoint_every = checkpoint_every
        self.telemetry = as_telemetry(telemetry)
        self.track_locations = track_locations
        # segment path → [(zone, offset, length), ...] as committed, for
        # index builders that want record addresses without re-reading
        # the segment (populated only with track_locations=True).
        self.segment_locations: Dict[str, List[tuple]] = {}
        self._buffers: Dict[int, List[ZoneScanResult]] = {}
        self._buffered = 0
        self.checkpoints = 0  # commits performed through this handle
        self.swept_orphans = 0  # crash debris removed on open()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: Path,
        seed: int,
        scale: float,
        num_shards: int = DEFAULT_NUM_SHARDS,
        compress: bool = True,
        zones_total: Optional[int] = None,
        config: Optional[Dict[str, Any]] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        telemetry=None,
        epoch: Optional[int] = None,
        parent_epoch: Optional[int] = None,
    ) -> "CampaignStore":
        """Initialise a fresh store directory (refuses to clobber one)."""
        root = Path(root)
        if manifest_path(root).exists():
            raise StoreError(f"{root} already holds a campaign store")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        manifest = CampaignManifest(
            seed=seed,
            scale=scale,
            num_shards=num_shards,
            compress=compress,
            config=dict(config or {}),
            zones_total=zones_total,
            epoch=epoch,
            parent_epoch=parent_epoch,
        )
        save_manifest(root, manifest)
        return cls(root, manifest, checkpoint_every=checkpoint_every, telemetry=telemetry)

    @classmethod
    def open(
        cls,
        root: Path,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        telemetry=None,
    ) -> "CampaignStore":
        """Open an existing store for appending (the resume path).

        Unreferenced segment files — debris from a crash between a
        segment commit and the manifest rewrite — are swept here so they
        can never be confused with live data.
        """
        root = Path(root)
        manifest = load_manifest(root)
        store = cls(root, manifest, checkpoint_every=checkpoint_every, telemetry=telemetry)
        swept = orphan_files(root, manifest.shards)
        for path in swept:
            path.unlink()
            logger.warning("swept uncommitted shard debris %s", path.name)
        store.swept_orphans = len(swept)
        if swept:
            store.telemetry.count("store.orphans_swept", len(swept))
        return store

    # -- writing -----------------------------------------------------------

    def append(self, result: ZoneScanResult) -> None:
        """Buffer one result; checkpoints automatically every
        ``checkpoint_every`` records."""
        if self.manifest.complete:
            raise StoreError("campaign is already complete; refusing to append")
        bucket = shard_for_zone(result.zone.to_text(), self.manifest.num_shards)
        self._buffers.setdefault(bucket, []).append(result)
        self._buffered += 1
        if self._buffered >= self.checkpoint_every:
            self.checkpoint()

    def checkpoint(self) -> int:
        """Seal all buffered records into new shard segments, then
        atomically rewrite the manifest to reference them.

        Returns the number of records committed.  Crash ordering: the
        segments are durable before the manifest names them, so the
        manifest never references a partial shard; at worst a crash
        leaves orphan segments that the next :meth:`open` sweeps.
        """
        if not self._buffered:
            return 0
        with self.telemetry.span("segment_commit") as span:
            committed = 0
            sequence = self.manifest.next_sequence
            new_infos = []
            for bucket in sorted(self._buffers):
                batch = self._buffers[bucket]
                if not batch:
                    continue
                locations: list = [] if self.track_locations else None
                info = write_shard(
                    self.root,
                    bucket,
                    sequence,
                    batch,
                    compress=self.manifest.compress,
                    locations=locations,
                )
                if locations is not None:
                    self.segment_locations[info.path] = locations
                sequence += 1
                committed += info.records
                new_infos.append(info)
            # Buffers drop and the in-memory manifest extends *before* the
            # durable manifest rewrite: if the rewrite fails transiently, a
            # later checkpoint re-saves the same (already durable) segments
            # with no duplicate records; if the process dies instead, the
            # unreferenced segments are swept as orphans on the next open.
            self._buffers.clear()
            self._buffered = 0
            self.manifest.shards.extend(new_infos)
            save_manifest(self.root, self.manifest)
            self.checkpoints += 1
            span["segments"] = len(new_infos)
            span["records"] = committed
        tel = self.telemetry
        if tel.enabled:
            tel.count("store.checkpoints")
            tel.count("store.segments", len(new_infos))
            tel.count("store.records", committed)
        return committed

    def complete(self) -> None:
        """Final checkpoint + mark the campaign complete."""
        self.checkpoint()
        self.manifest.status = STATUS_COMPLETE
        save_manifest(self.root, self.manifest)

    def reopen_in_progress(self) -> None:
        """Mark a complete campaign as in-progress again (used when a
        new scan pass extends an existing store)."""
        self.manifest.status = STATUS_IN_PROGRESS
        save_manifest(self.root, self.manifest)

    # -- resume support ----------------------------------------------------

    def completed_zones(self) -> Set[str]:
        """Dotted names of every durably persisted zone (the skip-set).

        Reads only the ``zone`` field of each stored line — no RRset
        reconstruction — so building the skip-set is cheap relative to
        scanning.
        """
        done: Set[str] = set()
        for info in self.manifest.shards:
            path = self.root / info.path
            with open_results_read(str(path)) as fp:
                for line in fp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        done.add(json.loads(line)["zone"])
                    except (json.JSONDecodeError, KeyError) as exc:
                        # Committed segments are atomic; a corrupt line
                        # here means on-disk damage, not a crash artefact.
                        raise ShardCorruption(
                            f"corrupt record inside committed shard {info.path}"
                        ) from exc
        return done

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Preserve progress even on error; completion stays explicit.
        self.checkpoint()
