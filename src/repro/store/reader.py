"""Streaming access to a stored campaign.

A :class:`StoreReader` feeds :meth:`AnalysisPipeline.analyze` straight
from shard segments — one record decoded at a time, none retained — so
re-analysing a campaign far larger than memory costs only the report's
own aggregates.  This is the offline half of the paper's methodology:
the 6.5 TiB archive was analysed without ever re-scanning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Set

from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.scanner.results import ZoneScanResult
from repro.scanner.serialize import LoadStats, open_results_read
from repro.store.manifest import CampaignManifest, load_manifest
from repro.store.shards import ShardCorruption, ShardInfo, StoreError, iter_shard


@dataclass
class StoreSummary:
    """What ``repro-dnssec store status`` prints."""

    root: str
    status: str
    seed: int
    scale: float
    records: int
    zones_total: Optional[int]
    segments: int
    buckets_used: int
    num_shards: int
    compressed: bool
    bytes_on_disk: int

    def render(self) -> str:
        planned = "?" if self.zones_total is None else str(self.zones_total)
        lines = [
            f"store:     {self.root}",
            f"status:    {self.status}",
            f"campaign:  seed={self.seed} scale={self.scale:g}",
            f"progress:  {self.records}/{planned} zones persisted",
            f"layout:    {self.segments} segments across "
            f"{self.buckets_used}/{self.num_shards} buckets"
            f" ({'gzip' if self.compressed else 'plain'} JSONL)",
            f"disk:      {self.bytes_on_disk} bytes",
        ]
        return "\n".join(lines)


class StoreReader:
    """Read-only handle on a campaign store."""

    def __init__(self, root: Path, verify_digests: bool = False):
        self.root = Path(root)
        self.manifest: CampaignManifest = load_manifest(
            self.root, verify_digests=verify_digests
        )

    # -- streaming ---------------------------------------------------------

    def _ordered_shards(self) -> List[ShardInfo]:
        # Commit order; deterministic for a given store regardless of
        # the manifest's list order.
        return sorted(self.manifest.shards, key=lambda info: (info.sequence, info.bucket))

    def iter_results(
        self, strict: bool = True, stats: Optional[LoadStats] = None
    ) -> Iterator[ZoneScanResult]:
        """Stream every stored result in commit order, O(1) memory.

        Committed shards are atomic, so corruption here is disk damage
        rather than an expected crash artefact — strict by default.
        """
        for info in self._ordered_shards():
            yield from iter_shard(self.root, info, strict=strict, stats=stats)

    def iter_bucket(
        self, bucket: int, strict: bool = True, stats: Optional[LoadStats] = None
    ) -> Iterator[ZoneScanResult]:
        """Stream one zone-hash bucket (a parallel consumer's share)."""
        for info in self._ordered_shards():
            if info.bucket == bucket:
                yield from iter_shard(self.root, info, strict=strict, stats=stats)

    def zones(self) -> Set[str]:
        """Dotted names of every stored zone.

        Served from the query snapshot's zone column when one exists
        and pins this exact manifest generation; otherwise streamed
        from the segments decoding only each line's ``zone`` field —
        either way, no RRset reconstruction for a name listing.
        """
        from repro.query.snapshot import load_fresh_zones

        indexed = load_fresh_zones(self.root, self.manifest)
        if indexed is not None:
            return set(indexed)
        zones: Set[str] = set()
        for info in self._ordered_shards():
            path = self.root / info.path
            if not path.exists():
                raise StoreError(f"manifest references missing shard {info.path}")
            with open_results_read(str(path)) as fp:
                for line in fp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        zones.add(json.loads(line)["zone"])
                    except (json.JSONDecodeError, KeyError) as exc:
                        raise ShardCorruption(
                            f"corrupt record inside committed shard {info.path}"
                        ) from exc
        return zones

    # -- analysis ----------------------------------------------------------

    def reanalyze(self, operator_db=None, now: Optional[int] = None) -> AnalysisReport:
        """Re-run the full analysis pipeline over the stored campaign
        without loading it into memory."""
        if now is None:
            pipeline = AnalysisPipeline(operator_db)
        else:
            pipeline = AnalysisPipeline(operator_db, now=now)
        return pipeline.analyze(self.iter_results())

    # -- inspection --------------------------------------------------------

    def summary(self) -> StoreSummary:
        size = 0
        for info in self.manifest.shards:
            path = self.root / info.path
            try:
                size += path.stat().st_size
            except FileNotFoundError:
                # A manifest naming a segment that is gone is on-disk
                # damage (committed segments are immutable) — report the
                # store as damaged with the offending path rather than
                # leaking a bare FileNotFoundError.
                raise StoreError(
                    f"store is damaged: manifest references missing shard {info.path}"
                ) from None
        return StoreSummary(
            root=str(self.root),
            status=self.manifest.status,
            seed=self.manifest.seed,
            scale=self.manifest.scale,
            records=self.manifest.records,
            zones_total=self.manifest.zones_total,
            segments=len(self.manifest.shards),
            buckets_used=len({info.bucket for info in self.manifest.shards}),
            num_shards=self.manifest.num_shards,
            compressed=self.manifest.compress,
            bytes_on_disk=size,
        )
