"""Sharded, crash-safe campaign warehouse (store-then-analyse at scale).

The persistence layer under every long-running campaign: results are
committed to zone-hash shard segments as the scan proceeds
(:mod:`checkpoint`), described by an atomically-rewritten manifest
(:mod:`manifest`), streamed back for O(1)-memory re-analysis
(:mod:`reader`), and compared across epochs (:mod:`diff`).  A campaign
killed at any point resumes from its manifest and finishes with the
same report an uninterrupted run produces.
"""

from repro.store.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_NUM_SHARDS,
    CampaignStore,
)
from repro.store.diff import (
    CampaignDiff,
    ZoneClassification,
    classify_store,
    diff_stores,
    render_diff,
)
from repro.store.manifest import (
    STATUS_COMPLETE,
    STATUS_IN_PROGRESS,
    CampaignManifest,
    load_manifest,
    save_manifest,
)
from repro.store.reader import StoreReader, StoreSummary
from repro.store.shards import (
    ShardCorruption,
    ShardInfo,
    StoreError,
    shard_for_zone,
    verify_shard,
    write_shard,
)

__all__ = [
    "CampaignDiff",
    "CampaignManifest",
    "CampaignStore",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_NUM_SHARDS",
    "STATUS_COMPLETE",
    "STATUS_IN_PROGRESS",
    "ShardCorruption",
    "ShardInfo",
    "StoreError",
    "StoreReader",
    "StoreSummary",
    "ZoneClassification",
    "classify_store",
    "diff_stores",
    "load_manifest",
    "render_diff",
    "save_manifest",
    "shard_for_zone",
    "verify_shard",
    "write_shard",
]
