"""Replaying a monitored world to any epoch.

Worlds are cheap to build and events are a pure function of the spec,
so a process needing "the world as of week *e*" simply rebuilds from
scratch and replays epochs 1..e.  Replaying (rather than caching a
mutated world) matters for correctness: some server behaviours are
stateful and consumable (e.g. transient-SERVFAIL quirks answer bogus a
fixed number of times), so every campaign must scan a *fresh* replica,
exactly like the from-scratch full scan it is compared against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ecosystem.mutate import bootstrap_zone
from repro.ecosystem.world import World, build_world
from repro.monitor.events import Event, apply_epoch, changed_zones
from repro.monitor.spec import MonitorSpec
from repro.scenarios.spec import ScenarioSpec


def world_at_epoch(
    scale: float, seed: int, monitor: MonitorSpec, epoch: int
) -> Tuple[World, List[List[Event]]]:
    """Build the world and replay events through *epoch* (0 = pristine).

    Returns the evolved world and the per-epoch event history
    (``history[e - 1]`` holds epoch *e*'s events).

    Agent installs recorded in ``monitor.installs`` after epoch *e*'s
    scan are applied at the start of epoch ``e + 1`` — before that
    epoch's event batch — so the DS lands on exactly the world state
    the agent verified.  Installs recorded at or after the target epoch
    have not happened yet and are ignored.
    """
    if epoch < 0:
        raise ValueError("epoch must be >= 0")
    world = build_world(scale=scale, seed=seed, scenarios=monitor.scenarios)
    history: List[List[Event]] = []
    for e in range(1, epoch + 1):
        for zone in monitor.installs_at(e - 1):
            bootstrap_zone(world, zone)
        history.append(apply_epoch(world, monitor, e))
    return world, history


def scan_world(
    scale: float,
    seed: int,
    monitor: Optional[MonitorSpec] = None,
    epoch: Optional[int] = None,
    scenarios: Optional[ScenarioSpec] = None,
):
    """The world a campaign should scan, plus its scan-subset.

    For plain campaigns (``epoch=None``) and the baseline epoch 0 the
    subset is None (scan everything); for delta epochs it is the sorted
    changed-zone list of the epoch's event batch, unioned with any
    agent installs from the previous epoch (securing a zone changes its
    delegation, so the next delta re-scans it and confirms the
    island → secured transition).  Every campaign participant — the
    sequential runner, the parallel parent, each worker — goes through
    this one function, so they all agree on what week *epoch* looks
    like and which zones changed.
    """
    if epoch is None:
        return build_world(scale=scale, seed=seed, scenarios=scenarios), None
    world, history = world_at_epoch(scale, seed, monitor, epoch)
    if epoch == 0:
        return world, None
    from repro.dns.name import Name

    changed = set(changed_zones(history[-1])) | set(monitor.installs_at(epoch - 1))
    subset = sorted(
        (Name.from_text(zone) for zone in changed),
        key=lambda n: n.canonical_key(),
    )
    return world, subset
