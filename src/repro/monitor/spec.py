"""Monitor event-stream parameters.

:class:`MonitorSpec` is the leaf configuration of the continuous-
monitoring plane: a seed plus per-kind weekly event rates.  It is a
frozen dataclass of numbers only, so it is picklable (spawn workers
carry it inside their :class:`~repro.parallel.worker.WorkerSpec`) and
round-trips losslessly through store manifests via
:meth:`to_dict` / :meth:`from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class EventRates:
    """Per-epoch (one simulated week) firing probability per event kind.

    Defaults are calibrated so the clean island/secured cohort — the
    only zones the event stream touches — churns a few percent per
    week, keeping delta campaigns far below the 30 % re-scan budget.
    """

    adopt_signal: float = 0.01
    publish_cds: float = 0.01
    withdraw_cds: float = 0.005
    bootstrap_ds: float = 0.02
    roll_key: float = 0.03
    churn_ns: float = 0.02
    remove_ds: float = 0.005

    def rate(self, kind: str) -> float:
        return float(getattr(self, kind))

    def scaled(self, factor: float) -> "EventRates":
        """Uniformly scale every rate (capped at 1.0) — tiny test worlds
        need boosted rates for events to fire at all."""
        return EventRates(
            **{f.name: min(1.0, getattr(self, f.name) * factor) for f in fields(self)}
        )

    def to_dict(self) -> Dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "EventRates":
        return cls(**{f.name: float(obj[f.name]) for f in fields(cls) if f.name in obj})


@dataclass(frozen=True)
class MonitorSpec:
    """Seeded description of the operator-behaviour timeline.

    The event stream is a pure function of ``(spec, epoch, world)`` —
    two processes holding equal specs derive identical events for every
    epoch, which is what lets parallel workers recompute their delta
    subsets independently instead of shipping zone lists around.
    """

    seed: int = 1
    rates: EventRates = EventRates()
    #: DS installs performed by a parental agent, as sorted
    #: ``(epoch_acted, zone)`` pairs.  An install recorded after epoch
    #: *e*'s scan takes effect at the start of epoch ``e + 1`` — replay
    #: applies it before that epoch's event batch.  The event-hash draws
    #: (:func:`repro.monitor.events.events_for_epoch`) never see this
    #: field, so agent action shifts outcomes only through world state.
    installs: Tuple[Tuple[int, str], ...] = ()
    #: Key-transition / adversarial-operator plane (None = the plain
    #: honest world).  Riding the monitor spec means every participant
    #: that rebuilds the world — sequential runner, parallel parent,
    #: every spawn worker, a resumed campaign — sees the same scenario
    #: population and rollover-kind draws.
    scenarios: Optional[ScenarioSpec] = None

    def scaled(self, factor: float) -> "MonitorSpec":
        return replace(self, rates=self.rates.scaled(factor))

    def installs_at(self, epoch: int) -> List[str]:
        """Zones whose agent install was recorded after *epoch*'s scan."""
        return sorted(zone for acted, zone in self.installs if acted == epoch)

    def with_installs(self, pairs: Iterable[Tuple[int, str]]) -> "MonitorSpec":
        """A spec whose install ledger is extended by *pairs* (deduplicated,
        kept sorted so equal ledgers compare equal regardless of order)."""
        merged = sorted(set(self.installs) | {(int(e), str(z)) for e, z in pairs})
        return replace(self, installs=tuple(merged))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"seed": self.seed, "rates": self.rates.to_dict()}
        if self.installs:
            # Omitted when empty so pre-agent manifests stay byte-stable.
            out["installs"] = [[epoch, zone] for epoch, zone in self.installs]
        if self.scenarios is not None:
            # Omitted when None so pre-scenario manifests stay byte-stable.
            out["scenarios"] = self.scenarios.to_dict()
        return out

    @classmethod
    def from_dict(cls, obj: Optional[Dict[str, Any]]) -> Optional["MonitorSpec"]:
        if obj is None:
            return None
        return cls(
            seed=int(obj.get("seed", 1)),
            rates=EventRates.from_dict(obj.get("rates", {})),
            installs=tuple(
                (int(epoch), str(zone)) for epoch, zone in obj.get("installs", [])
            ),
            scenarios=ScenarioSpec.from_dict(obj.get("scenarios")),
        )
