"""On-disk layout of a monitor root — dependency-free path helpers.

Kept separate from :mod:`repro.monitor.plane` (which imports the whole
campaign machinery) so lightweight consumers — the query plane detects
monitor roots to route per-epoch lookups — can share the layout without
paying the import.

::

    <root>/monitor.json            # MonitorConfig (version-stamped)
    <root>/epochs/e0000/           # epoch 0: baseline campaign store
    <root>/epochs/e0001/           # epoch 1: delta campaign store
    <root>/epochs/e0001/monitor_events.json   # the epoch's event batch
    <root>/events/monitor.jsonl    # telemetry stream (one per root)
"""

from __future__ import annotations

from pathlib import Path
from typing import List

MONITOR_STATE_FILENAME = "monitor.json"
EPOCHS_DIR = "epochs"
EPOCH_EVENTS_FILENAME = "monitor_events.json"
MONITOR_FORMAT_VERSION = 1


def is_monitor_root(path: Path) -> bool:
    """True when *path* holds a monitor (vs. a plain campaign store)."""
    return (Path(path) / MONITOR_STATE_FILENAME).exists()


def epoch_dir(root: Path, epoch: int) -> Path:
    return Path(root) / EPOCHS_DIR / f"e{epoch:04d}"


def list_epoch_dirs(root: Path) -> List[int]:
    """Epoch numbers that have a store directory under *root*, sorted.

    Presence of the directory only — completeness is the caller's
    concern (the manifest records it).
    """
    epochs_root = Path(root) / EPOCHS_DIR
    if not epochs_root.is_dir():
        return []
    epochs = []
    for entry in epochs_root.iterdir():
        name = entry.name
        if entry.is_dir() and name.startswith("e") and name[1:].isdigit():
            epochs.append(int(name[1:]))
    return sorted(epochs)
