"""Continuous monitoring: epoch-based delta campaigns over an evolving world.

Lazy re-exports only — :mod:`repro.campaign` imports
:mod:`repro.monitor.spec` for its config leaf, while
:mod:`repro.monitor.plane` imports :mod:`repro.campaign` for the
orchestration; keeping this package ``__init__`` lazy breaks the cycle.
"""

from typing import TYPE_CHECKING

__all__ = [
    "EpochDiff",
    "EpochResult",
    "Event",
    "EventRates",
    "Monitor",
    "MonitorConfig",
    "MonitorError",
    "MonitorSpec",
    "MonitorStatus",
    "render_epoch_diff",
]

_API = {
    "EpochDiff": ("repro.monitor.diff", "EpochDiff"),
    "render_epoch_diff": ("repro.monitor.diff", "render_epoch_diff"),
    "Event": ("repro.monitor.events", "Event"),
    "EventRates": ("repro.monitor.spec", "EventRates"),
    "MonitorSpec": ("repro.monitor.spec", "MonitorSpec"),
    "EpochResult": ("repro.monitor.plane", "EpochResult"),
    "Monitor": ("repro.monitor.plane", "Monitor"),
    "MonitorConfig": ("repro.monitor.plane", "MonitorConfig"),
    "MonitorError": ("repro.monitor.plane", "MonitorError"),
    "MonitorStatus": ("repro.monitor.plane", "MonitorStatus"),
}

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.diff import EpochDiff, render_epoch_diff
    from repro.monitor.events import Event
    from repro.monitor.plane import (
        EpochResult,
        Monitor,
        MonitorConfig,
        MonitorError,
        MonitorStatus,
    )
    from repro.monitor.spec import EventRates, MonitorSpec


def __getattr__(name: str):
    try:
        module_name, attr = _API[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(__all__)
