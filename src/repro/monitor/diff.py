"""Epoch-over-epoch diff reports.

A delta campaign's store holds only the zones its week's events
touched, so diffing two epoch *stores* directly would report every
untouched zone as removed.  The monitor instead diffs two merged
views — each zone's latest verdict across the chain up to the old and
new epoch respectively — through the same
:func:`repro.store.diff.diff_classifications` machinery the two-store
diff uses, and decorates the result with the timeline facts a monitor
operator cares about: which events fired and how many zones each delta
actually re-scanned.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from repro.monitor.events import Event
from repro.store.diff import CampaignDiff, render_diff


@dataclass
class EpochDiff:
    """What changed between two epochs of one monitor timeline."""

    old_epoch: int
    new_epoch: int
    diff: CampaignDiff
    # The operator actions applied across (old_epoch, new_epoch].
    events: List[Event] = field(default_factory=list)
    # Zones the delta campaigns in that window re-scanned.
    zones_rescanned: int = 0

    @property
    def event_counts(self) -> Counter:
        return Counter(event.kind for event in self.events)


def render_epoch_diff(epoch_diff: EpochDiff, examples: int = 5) -> str:
    """Human-readable epoch-over-epoch report."""
    lines = [
        f"monitor diff: epoch {epoch_diff.old_epoch} -> epoch {epoch_diff.new_epoch}",
        f"events applied: {len(epoch_diff.events)}"
        + (
            " ("
            + ", ".join(
                f"{kind} {count}" for kind, count in sorted(epoch_diff.event_counts.items())
            )
            + ")"
            if epoch_diff.events
            else ""
        ),
        f"zones re-scanned: {epoch_diff.zones_rescanned}",
        "",
    ]
    lines.append(render_diff(epoch_diff.diff, examples=examples))
    return "\n".join(lines)
