"""Deterministic per-epoch event streams.

Each simulated week, every *eligible* zone (see
:func:`repro.ecosystem.mutate.eligible`) rolls one hash per event kind
in a fixed order; the first applicable kind whose hash clears its rate
fires.  The stream is a pure function of ``(monitor spec, epoch, zone
name, replayed state)`` — no PRNG state, no dependence on world layout
or iteration order — so any process can recompute the exact event list
for any epoch.  This is the same layout-independent decision idiom the
chaos plane uses (:func:`repro.chaos.retry.stable_unit`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.chaos.retry import stable_unit
from repro.ecosystem import mutate
from repro.ecosystem.mutate import EVENT_KINDS
from repro.ecosystem.world import World
from repro.monitor.spec import MonitorSpec
from repro.scenarios.transitions import ADVANCE_EVENT, RECOVERABLE_PHASES


@dataclass(frozen=True)
class Event:
    """One operator action at one epoch."""

    epoch: int
    kind: str
    zone: str

    def to_dict(self) -> dict:
        return {"epoch": self.epoch, "kind": self.kind, "zone": self.zone}


def events_for_epoch(world: World, monitor: MonitorSpec, epoch: int) -> List[Event]:
    """The events that fire at *epoch*, given *world* in its pre-epoch
    state.  At most one event per zone per epoch; applicability is
    evaluated against the replayed state, so the stream self-consistently
    narrates a zone's life (adopt → publish → bootstrap → roll → ...).
    """
    if epoch < 1:
        raise ValueError("epochs are 1-based; epoch 0 is the baseline full scan")
    events: List[Event] = []
    for name in sorted(world.specs):
        spec = world.specs[name]
        if spec.rollover_phase in RECOVERABLE_PHASES:
            # A rollover window always closes after exactly one epoch:
            # the advance event fires with probability 1, ahead of the
            # rate-gated kinds, so window length never depends on rates
            # or layout.  Mishap phases (stranded/dangling) never
            # advance — the zone is out of the event stream for good.
            events.append(Event(epoch=epoch, kind=ADVANCE_EVENT, zone=name))
            continue
        if not mutate.eligible(world, spec):
            continue
        for kind in EVENT_KINDS:
            if not mutate.applicable(world, spec, kind):
                continue
            if stable_unit("monitor", monitor.seed, epoch, kind, name) < monitor.rates.rate(kind):
                events.append(Event(epoch=epoch, kind=kind, zone=name))
                break
    return events


def apply_epoch(world: World, monitor: MonitorSpec, epoch: int) -> List[Event]:
    """Advance *world* in place by one epoch; returns the applied events."""
    events = events_for_epoch(world, monitor, epoch)
    for event in events:
        mutate.apply_event(world, event.kind, event.zone, scenarios=monitor.scenarios)
    return events


def changed_zones(events: Sequence[Event]) -> List[str]:
    """The zone-serial/CSYNC-style change feed: zones touched by
    *events*, sorted.  Every event bumps its zone's SOA serial, so this
    is exactly the set a serial-watching monitor would flag."""
    return sorted({event.zone for event in events})
