"""The continuous-monitoring plane: epoch-based delta campaigns.

The paper's scan is a snapshot; deployment measurement is a *process* —
operators keep adopting authenticated bootstrapping, rolling keys, and
churning NS sets after any single scan completes.  :class:`Monitor`
turns the one-shot campaign machinery into that process: a timeline of
simulated weeks in which a seeded event stream evolves the world
(:mod:`repro.monitor.events`), a zone-serial/CSYNC-style change feed
flags the mutated zones, and each week only those zones are re-scanned
into a fresh per-epoch store.

Layout under one monitor root::

    <root>/monitor.json             the MonitorConfig (identity, rates)
    <root>/epochs/e0000/            epoch 0: baseline full-scan store
    <root>/epochs/e0001/            epoch 1: delta store (changed zones)
    <root>/epochs/eNNNN/monitor_events.json   the week's applied events
    <root>/events/monitor.jsonl     timeline telemetry (epoch spans)

The core invariant — enforced by the differential tests and CI — is
that a chain of delta campaigns renders **byte-identical** final tables
to a from-scratch full scan of the final world state, across serial,
``workers=N``, ``in_flight=N``, and kill-and-resume execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.agent.actions import ledger_path, read_ledger, secured_pairs
from repro.campaign import CampaignConfig, CampaignResult, resume_campaign, run_campaign
from repro.core.bootstrap import assess_zone
from repro.core.operators import OperatorDB
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.ecosystem.profiles import build_profiles, operator_db_config
from repro.monitor.diff import EpochDiff
from repro.monitor.events import Event, events_for_epoch
from repro.monitor.layout import (
    EPOCH_EVENTS_FILENAME,
    EPOCHS_DIR,
    MONITOR_FORMAT_VERSION,
    MONITOR_STATE_FILENAME,
)
from repro.monitor.spec import MonitorSpec
from repro.monitor.timeline import world_at_epoch
from repro.obs.events import agent_events_path, monitor_events_path
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.store.diff import ZoneClassification, diff_classifications
from repro.store.manifest import load_manifest, manifest_path
from repro.store.reader import StoreReader
from repro.store.shards import StoreError

class MonitorError(RuntimeError):
    """Monitor-plane misuse or damaged monitor state."""


@dataclass(frozen=True)
class MonitorConfig:
    """Identity and per-epoch execution settings of one monitor root.

    The campaign-level knobs (workers, in_flight, transport, …) are the
    defaults every epoch's :class:`~repro.campaign.CampaignConfig` leaf
    is built from; scale/seed/monitor are the timeline's *identity* and
    are persisted in ``monitor.json`` so a later process advances the
    same world the earlier ones observed.
    """

    root: Path
    scale: float = 1 / 100_000
    seed: int = 1
    monitor: MonitorSpec = MonitorSpec()
    workers: Optional[int] = None
    in_flight: Optional[int] = None
    transport: str = "sim"
    telemetry: bool = False
    checkpoint_every: Optional[int] = None
    num_shards: Optional[int] = None
    compress: bool = True

    def __post_init__(self):
        if not isinstance(self.root, Path):
            object.__setattr__(self, "root", Path(self.root))

    def to_dict(self) -> Dict[str, Any]:
        """The persisted form (everything but the root it lives in)."""
        return {
            "version": MONITOR_FORMAT_VERSION,
            "scale": self.scale,
            "seed": self.seed,
            "monitor": self.monitor.to_dict(),
            "workers": self.workers,
            "in_flight": self.in_flight,
            "transport": self.transport,
            "telemetry": self.telemetry,
            "checkpoint_every": self.checkpoint_every,
            "num_shards": self.num_shards,
            "compress": self.compress,
        }

    @classmethod
    def from_dict(cls, root: Path, obj: Dict[str, Any]) -> "MonitorConfig":
        version = obj.get("version")
        if version != MONITOR_FORMAT_VERSION:
            raise MonitorError(f"unsupported monitor.json version {version!r}")
        known = {f.name for f in fields(cls)} - {"root", "monitor"}
        settings = {key: obj[key] for key in known if key in obj}
        return cls(
            root=Path(root),
            monitor=MonitorSpec.from_dict(obj.get("monitor")) or MonitorSpec(),
            **settings,
        )


@dataclass
class EpochResult:
    """One :meth:`Monitor.run_epoch` / :meth:`Monitor.resume` outcome."""

    epoch: int
    store_dir: Path
    events: List[Event]
    zones_scanned: int
    campaign: CampaignResult
    complete: bool = True
    agent: Optional[Any] = None  # AgentRun when an agent acted on this epoch

    @property
    def simulated_duration(self) -> float:
        return self.campaign.simulated_duration


@dataclass
class EpochStatus:
    """Bookkeeping line for one epoch store."""

    epoch: int
    complete: bool
    records: int
    zones_total: Optional[int]
    events: Optional[int]  # applied events, when recorded


@dataclass
class MonitorStatus:
    root: Path
    scale: float
    seed: int
    epochs: List[EpochStatus] = field(default_factory=list)

    @property
    def last_complete(self) -> Optional[int]:
        done = [e.epoch for e in self.epochs if e.complete]
        return max(done) if done else None

    @property
    def in_progress(self) -> Optional[int]:
        open_epochs = [e.epoch for e in self.epochs if not e.complete]
        return open_epochs[0] if open_epochs else None

    def render(self) -> str:
        lines = [
            f"monitor at {self.root}",
            f"world: scale={self.scale:g} seed={self.seed}",
        ]
        if not self.epochs:
            lines.append("no epochs yet (run `repro monitor advance`)")
            return "\n".join(lines)
        for status in self.epochs:
            state = "complete" if status.complete else "IN PROGRESS"
            total = f"/{status.zones_total}" if status.zones_total is not None else ""
            events = f", {status.events} events" if status.events is not None else ""
            kind = "baseline" if status.epoch == 0 else "delta"
            lines.append(
                f"  epoch {status.epoch}: {state}, {kind}, "
                f"{status.records}{total} zones{events}"
            )
        return "\n".join(lines)


class Monitor:
    """Epoch-first orchestration over one monitor root.

    Typical use::

        monitor = Monitor.init(MonitorConfig(root, scale=1e-4, seed=7))
        monitor.run_epoch()          # epoch 0: baseline full scan
        monitor.run_until(weeks=4)   # delta campaigns for weeks 1..4
        report = monitor.analyze()   # merged view of the latest epoch
        print(monitor.diff().diff.changed)
    """

    def __init__(self, config: MonitorConfig):
        self.config = config
        self.root = config.root
        self._hub = None

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def init(cls, config: MonitorConfig) -> "Monitor":
        """Create a fresh monitor root (refuses to clobber one)."""
        root = Path(config.root)
        if (root / MONITOR_STATE_FILENAME).exists():
            raise MonitorError(f"{root} already holds a monitor")
        root.mkdir(parents=True, exist_ok=True)
        (root / EPOCHS_DIR).mkdir(exist_ok=True)
        state = root / MONITOR_STATE_FILENAME
        state.write_text(
            json.dumps(config.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return cls(config)

    @classmethod
    def open(cls, root: Path) -> "Monitor":
        """Open an existing monitor root."""
        root = Path(root)
        state = root / MONITOR_STATE_FILENAME
        if not state.exists():
            raise MonitorError(f"no monitor at {root} (missing {MONITOR_STATE_FILENAME})")
        try:
            obj = json.loads(state.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise MonitorError(f"monitor.json at {root} is not valid JSON: {exc}") from exc
        return cls(MonitorConfig.from_dict(root, obj))

    # -- epoch bookkeeping -------------------------------------------------

    def epoch_dir(self, epoch: int) -> Path:
        return self.root / EPOCHS_DIR / f"e{epoch:04d}"

    def epochs(self) -> List[int]:
        """Every epoch with a store on disk, in order."""
        epochs_root = self.root / EPOCHS_DIR
        if not epochs_root.is_dir():
            return []
        found = []
        for child in sorted(epochs_root.iterdir()):
            if child.name.startswith("e") and manifest_path(child).exists():
                found.append(int(child.name[1:]))
        return found

    def completed_epochs(self) -> List[int]:
        return [e for e in self.epochs() if load_manifest(self.epoch_dir(e)).complete]

    def in_progress_epoch(self) -> Optional[int]:
        for epoch in self.epochs():
            if not load_manifest(self.epoch_dir(epoch)).complete:
                return epoch
        return None

    def next_epoch(self) -> int:
        existing = self.epochs()
        return (existing[-1] + 1) if existing else 0

    # -- running -----------------------------------------------------------

    def run_epoch(
        self, stop_after: Optional[int] = None, agent=None
    ) -> EpochResult:
        """Advance the timeline by one epoch.

        Epoch 0 is the baseline full scan; every later epoch replays the
        event stream one week forward and re-scans only the changed
        zones.  *stop_after* aborts the epoch's scan after N zones with
        the store left in progress (the programmatic crash stand-in);
        finish it with :meth:`resume`.

        With an *agent* (:class:`repro.agent.Agent`), the agent acts on
        the epoch once its scan completes: verified DS installs enter
        the replay ledger, so the next epoch's change feed re-scans
        those zones and confirms the island → secured transition.
        """
        in_progress = self.in_progress_epoch()
        if in_progress is not None:
            raise MonitorError(
                f"epoch {in_progress} is still in progress; resume() it before advancing"
            )
        epoch = self.next_epoch()
        events = self._events_at(epoch)
        config = self._campaign_config(epoch, stop_after=stop_after)
        hub = self._telemetry()
        with hub.span("epoch", epoch=epoch) as span:
            campaign = run_campaign(config)
            self._write_events(epoch, events)
            manifest = load_manifest(self.epoch_dir(epoch))
            span["events"] = len(events)
            span["zones"] = manifest.records
            span["complete"] = manifest.complete
        hub.count("monitor.epochs")
        hub.count("monitor.events_applied", len(events))
        hub.count("monitor.zones_rescanned", manifest.records)
        hub.flush_counters()
        agent_run = None
        if agent is not None and manifest.complete:
            agent_run = self._run_agent(agent, epoch)
        return EpochResult(
            epoch=epoch,
            store_dir=self.epoch_dir(epoch),
            events=events,
            zones_scanned=manifest.records,
            campaign=campaign,
            complete=manifest.complete,
            agent=agent_run,
        )

    def resume(self, agent=None) -> EpochResult:
        """Finish the in-progress epoch (after a kill or ``stop_after``)."""
        epoch = self.in_progress_epoch()
        if epoch is None:
            raise MonitorError("no epoch is in progress; nothing to resume")
        campaign = resume_campaign(
            self.epoch_dir(epoch),
            checkpoint_every=self.config.checkpoint_every,
            telemetry=True if self.config.telemetry else None,
        )
        events = self._read_events(epoch)
        if events is None:
            events = self._events_at(epoch)
            self._write_events(epoch, events)
        manifest = load_manifest(self.epoch_dir(epoch))
        hub = self._telemetry()
        hub.event("epoch_resumed", epoch=epoch, zones=manifest.records)
        agent_run = None
        if agent is not None and manifest.complete:
            # Idempotent: zones the killed run already recorded for this
            # epoch are skipped, so a crash between scan and agent (or
            # mid-agent) resumes into the same ledger bytes.
            agent_run = self._run_agent(agent, epoch)
        return EpochResult(
            epoch=epoch,
            store_dir=self.epoch_dir(epoch),
            events=events,
            zones_scanned=manifest.records,
            campaign=campaign,
            complete=manifest.complete,
            agent=agent_run,
        )

    def run_until(self, weeks: int, agent=None) -> List[EpochResult]:
        """Run epochs (baseline included) until week *weeks* is observed."""
        if weeks < 0:
            raise ValueError("weeks must be >= 0")
        results = []
        if self.in_progress_epoch() is not None:
            results.append(self.resume(agent=agent))
        while self.next_epoch() <= weeks:
            results.append(self.run_epoch(agent=agent))
        return results

    # -- reading back ------------------------------------------------------

    def status(self) -> MonitorStatus:
        status = MonitorStatus(
            root=self.root, scale=self.config.scale, seed=self.config.seed
        )
        for epoch in self.epochs():
            manifest = load_manifest(self.epoch_dir(epoch))
            events = self._read_events(epoch)
            status.epochs.append(
                EpochStatus(
                    epoch=epoch,
                    complete=manifest.complete,
                    records=manifest.records,
                    zones_total=manifest.zones_total,
                    events=len(events) if events is not None else None,
                )
            )
        return status

    def operator_db(self) -> OperatorDB:
        """The NS-suffix attribution database (world-free — profiles
        only), for re-analysing stored records.  Scenario-enabled
        monitors attribute the adversarial operators too."""
        scenarios = self.config.monitor.scenarios
        adversarial = scenarios is not None and scenarios.enabled
        suffix_map, _ = operator_db_config(build_profiles(adversarial=adversarial))
        return OperatorDB(suffixes=suffix_map)

    def classifications(self, epoch: Optional[int] = None) -> Dict[str, ZoneClassification]:
        """Each zone's verdict as of *epoch* (default: latest complete):
        the classification from the newest epoch <= *epoch* that scanned
        the zone."""
        epoch = self._resolve_epoch(epoch)
        classes: Dict[str, ZoneClassification] = {}
        owner = self._zone_owners(epoch)
        for e in self._chain(epoch):
            reader = StoreReader(self.epoch_dir(e))
            for result in reader.iter_results():
                zone = result.zone.to_text()
                if owner[zone] != e:
                    continue
                assessment = assess_zone(result)
                classes[zone] = ZoneClassification(
                    status=assessment.status,
                    eligibility_value=assessment.eligibility.value,
                    outcome=assessment.signal_outcome,
                )
        return classes

    def analyze(self, epoch: Optional[int] = None) -> AnalysisReport:
        """The merged analysis report as of *epoch* (default: latest
        complete) — computed over each zone's newest stored record, so a
        chain of deltas analyses exactly like one full scan."""
        epoch = self._resolve_epoch(epoch)
        owner = self._zone_owners(epoch)
        pipeline = AnalysisPipeline(self.operator_db())

        def merged():
            for e in self._chain(epoch):
                reader = StoreReader(self.epoch_dir(e))
                for result in reader.iter_results():
                    if owner[result.zone.to_text()] == e:
                        yield result

        return pipeline.analyze(merged())

    def diff(self, old: Optional[int] = None, new: Optional[int] = None) -> EpochDiff:
        """Epoch-over-epoch diff of merged views (default: the last
        completed epoch against its parent)."""
        new = self._resolve_epoch(new)
        if old is None:
            if new == 0:
                raise MonitorError("epoch 0 has no parent to diff against")
            old = new - 1
        if not 0 <= old < new:
            raise MonitorError(f"cannot diff epoch {old} -> {new}")
        diff = diff_classifications(
            self.classifications(old),
            self.classifications(new),
            old_root=f"epoch {old}",
            new_root=f"epoch {new}",
        )
        events: List[Event] = []
        rescanned = 0
        for e in range(old + 1, new + 1):
            events.extend(self._read_events(e) or [])
            rescanned += load_manifest(self.epoch_dir(e)).records
        return EpochDiff(
            old_epoch=old,
            new_epoch=new,
            diff=diff,
            events=events,
            zones_rescanned=rescanned,
        )

    # -- internals ---------------------------------------------------------

    def _campaign_config(self, epoch: int, stop_after: Optional[int] = None) -> CampaignConfig:
        return CampaignConfig(
            scale=self.config.scale,
            seed=self.config.seed,
            recheck=False,
            store_dir=self.epoch_dir(epoch),
            checkpoint_every=self.config.checkpoint_every,
            num_shards=self.config.num_shards,
            compress=self.config.compress,
            stop_after=stop_after,
            workers=self.config.workers,
            in_flight=self.config.in_flight,
            telemetry=self.config.telemetry,
            transport=self.config.transport,
            epoch=epoch,
            monitor=self._composed_spec(),
        )

    def _composed_spec(self) -> MonitorSpec:
        """The base spec plus every verified agent install on record.

        ``monitor.json`` keeps the pristine configured spec; installs
        live in the agent ledger and are composed in here, the single
        point where specs are handed to campaigns and replays.  The
        composed spec is frozen into each epoch's store manifest, so
        resume paths (which rebuild from the manifest alone) see the
        same world without re-reading the ledger.  Replay ignores
        installs at or after the target epoch, so late ledger entries
        never disturb earlier epochs.
        """
        ledger = read_ledger(ledger_path(self.root))
        if not ledger:
            return self.config.monitor
        return self.config.monitor.with_installs(secured_pairs(ledger))

    def _run_agent(self, agent, epoch: int):
        """Let *agent* act on a completed epoch, streaming its counters
        to ``events/agent.jsonl`` (per-session additive, like the query
        plane's stream)."""
        hub = Telemetry() if self.config.telemetry else NULL_TELEMETRY
        run = agent.run(self, epoch=epoch, telemetry=hub)
        if hub is not NULL_TELEMETRY:
            hub.flush_counters()
            if hub.events:
                hub.open_sink(agent_events_path(self.root))
                hub.close()
        return run

    def _events_at(self, epoch: int) -> List[Event]:
        """The events that separate *epoch* from its parent ([] at 0)."""
        if epoch == 0:
            return []
        spec = self._composed_spec()
        world, _ = world_at_epoch(self.config.scale, self.config.seed, spec, epoch - 1)
        # Agent installs from the parent epoch land before this epoch's
        # draws are tested for applicability — the same order the scan
        # path replays them in (see ``world_at_epoch``).
        from repro.ecosystem.mutate import bootstrap_zone

        for zone in spec.installs_at(epoch - 1):
            bootstrap_zone(world, zone)
        return events_for_epoch(world, spec, epoch)

    def _events_file(self, epoch: int) -> Path:
        return self.epoch_dir(epoch) / EPOCH_EVENTS_FILENAME

    def _write_events(self, epoch: int, events: List[Event]) -> None:
        payload = [event.to_dict() for event in events]
        self._events_file(epoch).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def _read_events(self, epoch: int) -> Optional[List[Event]]:
        path = self._events_file(epoch)
        if not path.exists():
            return None
        return [
            Event(epoch=item["epoch"], kind=item["kind"], zone=item["zone"])
            for item in json.loads(path.read_text(encoding="utf-8"))
        ]

    def _resolve_epoch(self, epoch: Optional[int]) -> int:
        completed = self.completed_epochs()
        if not completed:
            raise MonitorError("no completed epochs yet")
        if epoch is None:
            return completed[-1]
        if epoch not in completed:
            raise MonitorError(f"epoch {epoch} is not a completed epoch of this monitor")
        return epoch

    def _chain(self, epoch: int) -> List[int]:
        """Epochs 0..epoch, verified complete and gap-free."""
        completed = set(self.completed_epochs())
        chain = list(range(epoch + 1))
        missing = [e for e in chain if e not in completed]
        if missing:
            raise MonitorError(
                f"delta chain to epoch {epoch} is broken: missing epochs {missing}"
            )
        return chain

    def _zone_owners(self, epoch: int) -> Dict[str, int]:
        """zone → the newest epoch <= *epoch* that scanned it."""
        owner: Dict[str, int] = {}
        for e in self._chain(epoch):
            for zone in StoreReader(self.epoch_dir(e)).zones():
                existing = owner.get(zone)
                if existing is None or e > existing:
                    owner[zone] = e
        return owner

    def _telemetry(self):
        if not self.config.telemetry:
            return NULL_TELEMETRY
        if self._hub is None:
            self._hub = Telemetry(wall_clock=True)
            sink = monitor_events_path(self.root)
            sink.parent.mkdir(parents=True, exist_ok=True)
            self._hub.open_sink(sink)
        return self._hub
