"""repro — reproduction of "Measuring the Deployment of DNSSEC
Bootstrapping Using Authenticated Signals" (IMC 2025).

The package bundles a from-scratch DNS/DNSSEC stack, a YoDNS-style
all-nameserver scanner, the RFC 9615 authenticated-bootstrapping analysis
pipeline that constitutes the paper's contribution, and a synthetic DNS
ecosystem calibrated to the paper's published measurements.

Typical use — continuous monitoring over an evolving ecosystem::

    from repro import Monitor, MonitorConfig

    monitor = Monitor.init(MonitorConfig(root="./monitor", scale=1 / 100_000))
    monitor.run_epoch()                # epoch 0: full baseline scan
    for result in monitor.run_until(weeks=4):
        print(result.epoch, result.zones_scanned, len(result.events))
    print(monitor.diff().diff.changed, "zones reclassified last week")

Add an RFC 9615 parental agent to close the bootstrapping loop — it
acts after each completed epoch, provisioning DS for zones whose
signal chain authenticates, and the next delta epoch confirms the
island → secured transition::

    from repro import Agent

    for result in monitor.run_until(weeks=8, agent=Agent()):
        if result.agent is not None:
            print(result.epoch, result.agent.secured)

One-shot campaigns take a :class:`CampaignConfig`::

    from repro import CampaignConfig, run_campaign

    campaign = run_campaign(
        CampaignConfig(scale=1 / 100_000, seed=1, telemetry=True)
    )
    print(campaign.report.total_scanned, campaign.simulated_duration)

Lower-level pieces compose the same way the campaign does::

    from repro import build_world, AnalysisPipeline

    world = build_world(scale=1 / 100_000, seed=1)
    scanner = world.make_scanner()
    results = scanner.scan_many(world.scan_list)
    report = AnalysisPipeline(world.operator_db).analyze(results)

Stored campaigns answer per-zone questions through the query plane::

    from repro import QueryService, build_index

    build_index(store_dir, operator_db=world.operator_db)
    with QueryService(store_dir) as queries:
        print(queries.zone_status("example.com").status)
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Name",
    "Message",
    "RRType",
    "Zone",
    "Scanner",
    "AnalysisPipeline",
    "build_world",
    "run_campaign",
    "resume_campaign",
    "CampaignConfig",
    "Telemetry",
    "ChaosConfig",
    "RetryPolicy",
    "QueryService",
    "build_index",
    "Monitor",
    "MonitorConfig",
    "EpochDiff",
    "Agent",
    "AgentConfig",
]

_API = {
    "Name": ("repro.dns", "Name"),
    "Message": ("repro.dns", "Message"),
    "RRType": ("repro.dns", "RRType"),
    "Zone": ("repro.dns", "Zone"),
    "Scanner": ("repro.scanner", "Scanner"),
    "AnalysisPipeline": ("repro.core", "AnalysisPipeline"),
    "build_world": ("repro.ecosystem", "build_world"),
    "run_campaign": ("repro.campaign", "run_campaign"),
    "resume_campaign": ("repro.campaign", "resume_campaign"),
    "CampaignConfig": ("repro.campaign", "CampaignConfig"),
    "Telemetry": ("repro.obs", "Telemetry"),
    "ChaosConfig": ("repro.chaos", "ChaosConfig"),
    "RetryPolicy": ("repro.chaos", "RetryPolicy"),
    "QueryService": ("repro.query", "QueryService"),
    "build_index": ("repro.query", "build_index"),
    "Monitor": ("repro.monitor", "Monitor"),
    "MonitorConfig": ("repro.monitor", "MonitorConfig"),
    "EpochDiff": ("repro.monitor", "EpochDiff"),
    "Agent": ("repro.agent", "Agent"),
    "AgentConfig": ("repro.agent", "AgentConfig"),
}


def __getattr__(name):
    """Lazily re-export the high-level API to keep import cost low."""
    from importlib import import_module

    if name in _API:
        module, attr = _API[name]
        return getattr(import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
