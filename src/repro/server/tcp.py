"""Real TCP transport (RFC 7766): length-prefixed DNS over a stream.

Complements :mod:`repro.server.udp` for answers that exceed the EDNS
UDP payload limit — large DNSKEY RRsets, fat TXT records, and zone
transfers in spirit.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import struct
import threading
from typing import Optional, Tuple

from repro.dns.message import Message
from repro.obs.telemetry import as_telemetry
from repro.server.behaviors import DropQueriesBehavior
from repro.server.nameserver import AuthoritativeServer


class TcpNameserver:
    """An :class:`AuthoritativeServer` listening on a localhost TCP port.

    Runs its own event loop on a daemon thread; use as a context manager::

        with TcpNameserver(server) as endpoint:
            response = query_tcp(endpoint, make_query("example.com", RRType.SOA))
    """

    def __init__(
        self,
        server: AuthoritativeServer,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.telemetry = as_telemetry(telemetry)
        # Mirrors the UDP server: a stream segment that does not parse
        # as DNS closes the connection, counted, never silent.
        self.decode_errors = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._started = threading.Event()

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while True:
                header = await reader.readexactly(2)
                (length,) = struct.unpack("!H", header)
                data = await reader.readexactly(length)
                try:
                    query = Message.from_wire(data)
                except Exception:
                    self.decode_errors += 1
                    self.telemetry.count("wire.decode_errors")
                    break
                # Same drop semantics as the UDP path: the query is
                # swallowed and the client is left to its timeout.
                dropped = False
                for behavior in self.server.behaviors:
                    if isinstance(behavior, DropQueriesBehavior) and behavior.should_drop(
                        query
                    ):
                        dropped = True
                        break
                if dropped:
                    continue
                response = self.server.handle_query(query)
                wire = response.to_wire()  # no size limit over TCP
                writer.write(struct.pack("!H", len(wire)) + wire)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def start():
            self._tcp_server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
            self.port = self._tcp_server.sockets[0].getsockname()[1]
            self._started.set()

        self._loop.run_until_complete(start())
        self._loop.run_forever()
        self._tcp_server.close()
        self._loop.run_until_complete(self._tcp_server.wait_closed())
        self._loop.close()

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=5):  # pragma: no cover
            raise RuntimeError("TCP nameserver failed to start")
        return (self.host, self.port)

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def query_tcp(endpoint: Tuple[str, int], query: Message, timeout: float = 2.0) -> Message:
    """Send one query over TCP (2-byte length prefix) and decode the answer."""
    wire = query.to_wire()
    with contextlib.closing(socket.create_connection(endpoint, timeout=timeout)) as sock:
        sock.sendall(struct.pack("!H", len(wire)) + wire)
        header = _read_exactly(sock, 2)
        (length,) = struct.unpack("!H", header)
        return Message.from_wire(_read_exactly(sock, length))


def _read_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
