"""In-memory network fabric connecting scanners to authoritative servers.

The fabric maps IP addresses to servers (many IPs may share one server —
that is precisely how anycast providers like Cloudflare appear from the
outside), moves whole wire-format messages, counts queries and bytes per
destination, and advances a simulated clock so that rate limiters behave
deterministically without real sleeping.

Failure injection is delegated to the chaos plane
(:mod:`repro.chaos`): install one with :meth:`SimulatedNetwork.install_chaos`
and every exchange is first offered to it — packet loss, brownouts,
SERVFAIL bursts, truncation storms, flaky TCP, and added latency, all
seeded and replayable.  The historical ``loss_hook`` attribute remains
as a deprecated shim for one release.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.dns.message import Message, make_response
from repro.dns.types import Rcode
from repro.server.behaviors import DropQueriesBehavior
from repro.server.nameserver import AuthoritativeServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos import ChaosConfig, ChaosPlane


class NetworkTimeout(Exception):
    """No response arrived within the timeout (dropped or dark IP)."""


class SimulatedClock:
    """A monotonically advancing virtual clock (seconds).

    When a :class:`repro.sched.EventLoop` drives this clock
    (``scheduler`` is set), reads and advances made *inside a task* are
    task-local: ``now()`` answers the task's own timeline and
    ``advance()`` suspends the task until the simulated fire time, so
    concurrent zone scans overlap their waits.  Outside any task — and
    whenever no loop is attached — the clock is the plain global one.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self.scheduler = None

    def now(self) -> float:
        scheduler = self.scheduler
        if scheduler is not None:
            task = scheduler.current_task
            if task is not None:
                return task.now
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clock cannot go backwards")
        scheduler = self.scheduler
        if scheduler is not None and scheduler.current_task is not None:
            scheduler.task_advance(seconds)
            return
        self._now += seconds

    @property
    def current_task(self):
        """The scheduled task currently advancing on this clock (None
        outside an event loop) — used for per-task query attribution."""
        scheduler = self.scheduler
        return scheduler.current_task if scheduler is not None else None


class SimulatedNetwork:
    """Registry of IP → server plus accounting and failure injection."""

    #: Bound on cached response wires (cleared wholesale on overflow).
    RESPONSE_CACHE_LIMIT = 1 << 15

    def __init__(self, clock: Optional[SimulatedClock] = None, query_cost: float = 0.0):
        self.clock = clock or SimulatedClock()
        self._servers: Dict[str, AuthoritativeServer] = {}
        self._dark: set[str] = set()
        self.query_cost = query_cost
        self.queries_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.timeouts = 0
        self.truncations = 0
        self.tcp_queries = 0
        self.per_ip_queries: Dict[str, int] = {}
        # The fault-injection plane (None = fault-free network).
        self.chaos: Optional["ChaosPlane"] = None
        # Deprecated predecessor of the chaos plane; see the property below.
        self._loss_hook: Optional[Callable[[str, Message], bool]] = None
        # Opt-in response-wire cache (see enable_response_cache): campaigns
        # never mutate zones mid-run, so behaviour-free servers answer as a
        # pure function of the query bytes.  Off by default because tests
        # and provisioning flows DO mutate zones between queries.
        self.response_cache_enabled = False
        self._response_cache: Dict[tuple, bytes] = {}
        self.response_cache_hits = 0

    def enable_response_cache(self) -> None:
        """Serve repeated identical queries from cached response wires.

        Only exchanges with behaviour-free servers are cached, keyed by
        (server, query bytes minus the message id, tcp); the message id
        is patched into the cached wire on a hit.  Callers that mutate
        zone content after enabling must call
        :meth:`invalidate_response_cache`.
        """
        self.response_cache_enabled = True

    def invalidate_response_cache(self) -> None:
        self._response_cache.clear()

    # -- scheduling --------------------------------------------------------

    def make_event_loop(self, clock, max_in_flight: int = 1, extra_clocks=()):
        """The event loop a scanner on this transport should run under.

        The simulated fabric uses the plain deterministic
        :class:`repro.sched.EventLoop`; :class:`repro.wire.WireNetwork`
        overrides this to return a :class:`repro.wire.WireLoop` whose
        tasks can park on socket futures.
        """
        from repro.sched import EventLoop

        return EventLoop(clock, max_in_flight=max_in_flight, extra_clocks=extra_clocks)

    # -- failure injection -------------------------------------------------

    def install_chaos(self, config: "ChaosConfig") -> "ChaosPlane":
        """Attach a chaos plane driven by this network's clock."""
        from repro.chaos import ChaosPlane

        self.chaos = ChaosPlane(config, clock=self.clock)
        return self.chaos

    @property
    def loss_hook(self) -> Optional[Callable[[str, Message], bool]]:
        """Deprecated: (ip, query) -> True to drop this datagram.

        Superseded by the chaos plane (``install_chaos`` /
        :class:`repro.chaos.ChaosConfig` with a ``loss`` intensity),
        which is seeded, composable, and budget-aware.  Setting a hook
        still works for one release and emits a DeprecationWarning.
        """
        return self._loss_hook

    @loss_hook.setter
    def loss_hook(self, hook: Optional[Callable[[str, Message], bool]]) -> None:
        if hook is not None:
            warnings.warn(
                "SimulatedNetwork.loss_hook is deprecated; use "
                "network.install_chaos(ChaosConfig(loss=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self._loss_hook = hook

    # -- topology ------------------------------------------------------------

    def register(self, ip: str, server: AuthoritativeServer) -> None:
        self._servers[ip] = server

    def register_dark(self, ip: str) -> None:
        """An address that never answers (unreachable host)."""
        self._dark.add(ip)

    def server_at(self, ip: str) -> Optional[AuthoritativeServer]:
        return self._servers.get(ip)

    def addresses(self) -> list[str]:
        return sorted(self._servers)

    # -- data plane --------------------------------------------------------------

    def query(
        self,
        ip: str,
        query: Message,
        timeout: float = 2.0,
        tcp: bool = False,
        wire: Optional[bytes] = None,
    ) -> Message:
        """Send *query* to *ip* and return the response message.

        The exchange is wire-accurate: the query is encoded and the
        response decoded, so codec bugs surface in integration tests the
        same way they would on a real socket.  UDP responses are subject
        to the EDNS payload limit and may come back truncated (TC bit);
        pass ``tcp=True`` to retry without the size limit (RFC 7766).
        Callers that ask the same question of many addresses may pass a
        pre-encoded *wire* (it must be ``query.to_wire()``) to skip
        re-encoding — the receiving side still decodes the actual bytes.
        Raises :class:`NetworkTimeout` for dark addresses, drop
        behaviours, and injected faults.
        """
        if wire is None:
            wire = query.to_wire()
        self.queries_sent += 1
        task = self.clock.current_task
        if task is not None:
            # Concurrent scans: charge the query to the in-flight zone
            # (a global-counter delta would count other tasks' traffic).
            task.queries += 1
        if tcp:
            self.tcp_queries += 1
        self.bytes_sent += len(wire)
        self.per_ip_queries[ip] = self.per_ip_queries.get(ip, 0) + 1
        if self.query_cost:
            self.clock.advance(self.query_cost)
        if self._loss_hook is not None and self._loss_hook(ip, query):
            self.timeouts += 1
            self.clock.advance(timeout)
            raise NetworkTimeout(f"packet to {ip} lost")
        if self.chaos is not None:
            question = query.question
            decision = self.chaos.decide(
                ip,
                question.name.canonical_key() if question else b"",
                int(question.rrtype) if question else 0,
                tcp,
            )
            if decision.latency:
                self.clock.advance(decision.latency)
            if decision.drop:
                self.timeouts += 1
                self.clock.advance(timeout)
                raise NetworkTimeout(f"chaos {decision.kind}: packet to {ip} lost")
            if decision.servfail or decision.truncate:
                return self._synthesize_fault(wire, decision)
        server = self._servers.get(ip)
        if server is None or ip in self._dark:
            self.timeouts += 1
            self.clock.advance(timeout)
            raise NetworkTimeout(f"no server listening at {ip}")
        response_wire = None
        cache_key = None
        if self.response_cache_enabled and not server.behaviors:
            cache_key = (id(server), wire[2:], tcp)
            hit = self._response_cache.get(cache_key)
            if hit is not None:
                # The cached tail is everything after the message id; the
                # response id always mirrors the query id.
                server.queries_handled += 1
                self.response_cache_hits += 1
                response_wire = wire[:2] + hit
        if response_wire is None:
            decoded = Message.from_wire(wire)
            for behavior in server.behaviors:
                if isinstance(behavior, DropQueriesBehavior) and behavior.should_drop(decoded):
                    self.timeouts += 1
                    self.clock.advance(timeout)
                    raise NetworkTimeout(f"{ip} dropped the query")
            response = server.handle_query(decoded)
            if tcp:
                response_wire = response.to_wire()
            else:
                limit = decoded.edns_payload if decoded.edns else 512
                response_wire = response.to_wire(max_size=limit)
            if cache_key is not None:
                if len(self._response_cache) >= self.RESPONSE_CACHE_LIMIT:
                    self._response_cache.clear()
                self._response_cache[cache_key] = response_wire[2:]
        self.bytes_received += len(response_wire)
        reply = Message.from_wire(response_wire)
        if reply.truncated:
            self.truncations += 1
        return reply

    def _synthesize_fault(self, wire: bytes, decision) -> Message:
        """A chaos-made response (SERVFAIL burst or truncation storm),
        wire-round-tripped like any real answer so accounting holds."""
        decoded = Message.from_wire(wire)
        if decision.servfail:
            response = make_response(decoded, Rcode.SERVFAIL)
        else:
            response = make_response(decoded)
            response.truncated = True
        response_wire = response.to_wire()
        self.bytes_received += len(response_wire)
        reply = Message.from_wire(response_wire)
        if reply.truncated:
            self.truncations += 1
        return reply

    def __repr__(self) -> str:
        return (
            f"<SimulatedNetwork servers={len(self._servers)} "
            f"queries={self.queries_sent} timeouts={self.timeouts}>"
        )
