"""In-memory network fabric connecting scanners to authoritative servers.

The fabric maps IP addresses to servers (many IPs may share one server —
that is precisely how anycast providers like Cloudflare appear from the
outside), moves whole wire-format messages, counts queries and bytes per
destination, and advances a simulated clock so that rate limiters behave
deterministically without real sleeping.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.dns.message import Message
from repro.server.behaviors import DropQueriesBehavior
from repro.server.nameserver import AuthoritativeServer


class NetworkTimeout(Exception):
    """No response arrived within the timeout (dropped or dark IP)."""


class SimulatedClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clock cannot go backwards")
        self._now += seconds


class SimulatedNetwork:
    """Registry of IP → server plus accounting and failure injection."""

    def __init__(self, clock: Optional[SimulatedClock] = None, query_cost: float = 0.0):
        self.clock = clock or SimulatedClock()
        self._servers: Dict[str, AuthoritativeServer] = {}
        self._dark: set[str] = set()
        self.query_cost = query_cost
        self.queries_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.timeouts = 0
        self.truncations = 0
        self.tcp_queries = 0
        self.per_ip_queries: Dict[str, int] = {}
        # Optional hook: (ip, query) -> True to drop this datagram.
        self.loss_hook: Optional[Callable[[str, Message], bool]] = None

    # -- topology ------------------------------------------------------------

    def register(self, ip: str, server: AuthoritativeServer) -> None:
        self._servers[ip] = server

    def register_dark(self, ip: str) -> None:
        """An address that never answers (unreachable host)."""
        self._dark.add(ip)

    def server_at(self, ip: str) -> Optional[AuthoritativeServer]:
        return self._servers.get(ip)

    def addresses(self) -> list[str]:
        return sorted(self._servers)

    # -- data plane --------------------------------------------------------------

    def query(
        self,
        ip: str,
        query: Message,
        timeout: float = 2.0,
        tcp: bool = False,
        wire: Optional[bytes] = None,
    ) -> Message:
        """Send *query* to *ip* and return the response message.

        The exchange is wire-accurate: the query is encoded and the
        response decoded, so codec bugs surface in integration tests the
        same way they would on a real socket.  UDP responses are subject
        to the EDNS payload limit and may come back truncated (TC bit);
        pass ``tcp=True`` to retry without the size limit (RFC 7766).
        Callers that ask the same question of many addresses may pass a
        pre-encoded *wire* (it must be ``query.to_wire()``) to skip
        re-encoding — the receiving side still decodes the actual bytes.
        Raises :class:`NetworkTimeout` for dark addresses, drop
        behaviours, and loss-hook hits.
        """
        if wire is None:
            wire = query.to_wire()
        self.queries_sent += 1
        if tcp:
            self.tcp_queries += 1
        self.bytes_sent += len(wire)
        self.per_ip_queries[ip] = self.per_ip_queries.get(ip, 0) + 1
        if self.query_cost:
            self.clock.advance(self.query_cost)
        if self.loss_hook is not None and self.loss_hook(ip, query):
            self.timeouts += 1
            self.clock.advance(timeout)
            raise NetworkTimeout(f"packet to {ip} lost")
        server = self._servers.get(ip)
        if server is None or ip in self._dark:
            self.timeouts += 1
            self.clock.advance(timeout)
            raise NetworkTimeout(f"no server listening at {ip}")
        decoded = Message.from_wire(wire)
        for behavior in server.behaviors:
            if isinstance(behavior, DropQueriesBehavior) and behavior.should_drop(decoded):
                self.timeouts += 1
                self.clock.advance(timeout)
                raise NetworkTimeout(f"{ip} dropped the query")
        response = server.handle_query(decoded)
        if tcp:
            response_wire = response.to_wire()
        else:
            limit = decoded.edns_payload if decoded.edns else 512
            response_wire = response.to_wire(max_size=limit)
        self.bytes_received += len(response_wire)
        reply = Message.from_wire(response_wire)
        if reply.truncated:
            self.truncations += 1
        return reply

    def __repr__(self) -> str:
        return (
            f"<SimulatedNetwork servers={len(self._servers)} "
            f"queries={self.queries_sent} timeouts={self.timeouts}>"
        )
