"""Real UDP transport: serve and query authoritative servers on sockets.

The simulated fabric covers the measurement pipeline; this module proves
the wire codec and server logic interoperate over actual datagrams and
powers the live examples.  Synchronous wrappers are provided so tests and
examples don't need to manage an event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Optional, Tuple

from repro.dns.message import Message
from repro.dns.types import MAX_UDP_PAYLOAD
from repro.obs.telemetry import as_telemetry
from repro.server.behaviors import DropQueriesBehavior
from repro.server.nameserver import AuthoritativeServer


class _ServerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: AuthoritativeServer, telemetry=None):
        self.server = server
        self.telemetry = as_telemetry(telemetry)
        # Unparseable datagrams are dropped (a real server can answer
        # nothing useful), but never silently: the count surfaces as
        # wire.decode_errors telemetry and on this attribute.
        self.decode_errors = 0
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport):  # pragma: no cover - asyncio plumbing
        self.transport = transport

    def datagram_received(self, data: bytes, addr):
        try:
            query = Message.from_wire(data)
        except Exception:
            self.decode_errors += 1
            self.telemetry.count("wire.decode_errors")
            return
        for behavior in self.server.behaviors:
            if isinstance(behavior, DropQueriesBehavior) and behavior.should_drop(query):
                return
        response = self.server.handle_query(query)
        payload = query.edns_payload if query.edns else 512
        assert self.transport is not None
        self.transport.sendto(response.to_wire(max_size=payload), addr)


class UdpNameserver:
    """An :class:`AuthoritativeServer` listening on a localhost UDP port.

    Runs its own event loop on a daemon thread; use as a context manager::

        with UdpNameserver(server) as endpoint:
            response = query_udp(endpoint, make_query("example.com", RRType.SOA))
    """

    def __init__(
        self,
        server: AuthoritativeServer,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.protocol = _ServerProtocol(server, telemetry=telemetry)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._started = threading.Event()

    @property
    def decode_errors(self) -> int:
        """Datagrams received that did not parse as DNS messages."""
        return self.protocol.decode_errors

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def start():
            transport, _ = await self._loop.create_datagram_endpoint(
                lambda: self.protocol, local_addr=(self.host, self.port)
            )
            self._transport = transport
            self.port = transport.get_extra_info("sockname")[1]
            self._started.set()

        self._loop.run_until_complete(start())
        self._loop.run_forever()
        # Drain pending callbacks after stop() so close() is clean.
        self._transport.close()
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=5):  # pragma: no cover - startup failure
            raise RuntimeError("UDP nameserver failed to start")
        return (self.host, self.port)

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def query_udp(
    endpoint: Tuple[str, int],
    query: Message,
    timeout: float = 2.0,
    retries: int = 1,
) -> Message:
    """Send one query over UDP and return the decoded response.

    Uses a short-lived socket per call (the scanner's behaviour); retries
    once on timeout by default.
    """
    import socket

    wire = query.to_wire()
    last_error: Optional[Exception] = None
    for _ in range(retries + 1):
        with contextlib.closing(socket.socket(socket.AF_INET, socket.SOCK_DGRAM)) as sock:
            sock.settimeout(timeout)
            try:
                sock.sendto(wire, endpoint)
                data, _ = sock.recvfrom(max(MAX_UDP_PAYLOAD, 4096))
                response = Message.from_wire(data)
                if response.id == query.id:
                    return response
                last_error = ValueError("mismatched message id")
            except OSError as exc:
                last_error = exc
    raise TimeoutError(f"no response from {endpoint}: {last_error}")
