"""Authoritative DNS serving: answer logic, operator quirks, and transports.

The scanner talks to :class:`~repro.server.network.SimulatedNetwork` (an
in-memory IP fabric) by default; the same :class:`AuthoritativeServer`
objects can also be exposed on real localhost UDP sockets via
:mod:`repro.server.udp`.
"""

from repro.server.nameserver import AuthoritativeServer
from repro.server.network import NetworkTimeout, SimulatedClock, SimulatedNetwork
from repro.server.behaviors import (
    AfternicParkingBehavior,
    DropQueriesBehavior,
    LegacyUnknownTypeBehavior,
    ServerBehavior,
    TransientFailureBehavior,
)

__all__ = [
    "AfternicParkingBehavior",
    "AuthoritativeServer",
    "DropQueriesBehavior",
    "LegacyUnknownTypeBehavior",
    "NetworkTimeout",
    "ServerBehavior",
    "SimulatedClock",
    "SimulatedNetwork",
    "TransientFailureBehavior",
]
