"""Authoritative nameserver answer logic (RFC 1034 §4.3.2, RFC 4035 §3).

An :class:`AuthoritativeServer` holds zones (directly or through a lazy
*zone provider*) and turns a query :class:`~repro.dns.message.Message`
into a response: answer, referral, NODATA, or NXDOMAIN — attaching
RRSIGs, NSEC proofs and DS records when the DO bit is set.

Operator quirks (legacy servers erroring on unknown types, parking
services answering everything, transient failures) are layered on via
:mod:`repro.server.behaviors` rather than forked server classes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.dns.message import Message, make_response
from repro.dns.name import Name
from repro.dns.rrset import RRset
from repro.dns.types import Rcode, RRType
from repro.dns.zone import LookupStatus, Zone

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.behaviors import ServerBehavior

# A provider maps an apex name to a Zone (or None); lets worlds
# materialise zones lazily instead of keeping 10^5 signed zones resident.
ZoneProvider = Callable[[Name], Optional[Zone]]


class AuthoritativeServer:
    """Serves one or more zones authoritatively."""

    def __init__(self, server_id: str = "ns"):
        self.server_id = server_id
        self._zones: Dict[Name, Zone] = {}
        self._provider_apexes: set[Name] = set()
        self._providers: List[ZoneProvider] = []
        self.behaviors: List["ServerBehavior"] = []
        self.queries_handled = 0
        # Zones this server exports via AXFR (RFC 5936); default none.
        self.allow_axfr: set[Name] = set()

    # -- zone management ---------------------------------------------------

    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone

    def add_zone_provider(self, apexes: Iterable[Name], provider: ZoneProvider) -> None:
        """Register a lazy provider claiming authority for *apexes*."""
        self._provider_apexes.update(apexes)
        self._providers.append(provider)

    def claim_apex(self, apex: Name) -> None:
        """Extend an installed provider's authority to one more apex
        (NS churn moves a customer zone between host servers; the
        destination's provider map gains the spec, and this makes the
        server answer for it)."""
        self._provider_apexes.add(apex)

    def add_behavior(self, behavior: "ServerBehavior") -> None:
        self.behaviors.append(behavior)

    def zone_apexes(self) -> List[Name]:
        return sorted(
            set(self._zones) | self._provider_apexes, key=lambda n: n.canonical_key()
        )

    def find_zone(self, qname: Name) -> Optional[Zone]:
        """The most specific zone this server is authoritative for that
        encloses *qname* (deepest-match wins, RFC 1034 §4.3.2 step 2).

        Walks the suffixes of *qname* from deepest to shallowest, so the
        cost is O(labels) even with hundreds of thousands of apexes.
        """
        for depth in range(len(qname), -1, -1):
            apex = qname.split(depth)
            zone = self._zones.get(apex)
            if zone is not None:
                return zone
            if apex in self._provider_apexes:
                for provider in self._providers:
                    zone = provider(apex)
                    if zone is not None:
                        return zone
        return None

    # -- query handling -------------------------------------------------------

    def handle_query(self, query: Message) -> Message:
        """Answer one query message, running behaviour hooks around the
        default RFC answer algorithm."""
        self.queries_handled += 1
        for behavior in self.behaviors:
            short_circuit = behavior.intercept(self, query)
            if short_circuit is not None:
                return short_circuit
        response = self._answer(query)
        for behavior in self.behaviors:
            response = behavior.postprocess(self, query, response)
        return response

    def _answer(self, query: Message) -> Message:
        if query.question is None:
            return make_response(query, Rcode.FORMERR)
        qname = query.question.name
        qtype = RRType.make(int(query.question.rrtype))
        if int(qtype) == int(RRType.AXFR):
            return self._answer_axfr(query, qname)
        zone = self.find_zone(qname)
        if (
            zone is not None
            and int(qtype) == int(RRType.DS)
            and qname == zone.origin
            and not qname.is_root()
        ):
            # DS at a zone apex belongs to the parent side of the cut
            # (RFC 4035 §3.1.4.1): when we also host the parent zone,
            # answer from there.
            parent_zone = self.find_zone(qname.parent())
            if parent_zone is not None and parent_zone.origin != zone.origin:
                zone = parent_zone
        if zone is None:
            return make_response(query, Rcode.REFUSED)
        want_dnssec = query.dnssec_ok
        result = zone.lookup(qname, qtype)
        response = make_response(query)
        response.authoritative = True

        if result.status == LookupStatus.ANSWER:
            response.answer.append(result.rrset)
            if want_dnssec:
                self._attach_sigs(zone, response.answer, qname)
        elif result.status == LookupStatus.WILDCARD:
            response.answer.append(result.rrset)
            if want_dnssec:
                # The RRSIG lives at the wildcard owner; it is served
                # with the synthesised name (RFC 4035 §3.1.3.3), plus the
                # NSEC proving no closer match exists.
                self._attach_wildcard_sigs(zone, result, response)
        elif result.status == LookupStatus.CNAME:
            response.answer.append(result.rrset)
            if want_dnssec:
                self._attach_sigs(zone, response.answer, qname)
            self._chase_cname(zone, result.rrset, qtype, response, want_dnssec)
        elif result.status == LookupStatus.NODATA:
            self._attach_soa(zone, response, want_dnssec)
            if want_dnssec:
                self._attach_nsec(zone, qname, response)
        elif result.status == LookupStatus.NXDOMAIN:
            response.rcode = Rcode.NXDOMAIN
            self._attach_soa(zone, response, want_dnssec)
            if want_dnssec:
                self._attach_nxdomain_proof(zone, qname, response)
        elif result.status == LookupStatus.DELEGATION:
            response.authoritative = False
            self._attach_referral(zone, result.cut_name, response, want_dnssec)
        else:  # NOT_IN_ZONE — find_zone said yes but the zone disagrees
            response.rcode = Rcode.SERVFAIL
        return response

    def _answer_axfr(self, query: Message, qname: Name) -> Message:
        """Zone transfer (RFC 5936): SOA, every RRset, SOA again.

        Only allowed for zones this server is configured to export
        (``allow_axfr``) — the paper's ccTLD registries (.ch, .li, .se,
        .nu, .ee) publish their zones this way, most do not.
        """
        zone = self._zones.get(qname)
        if zone is None or qname not in self.allow_axfr:
            return make_response(query, Rcode.REFUSED)
        soa = zone.get_rrset(zone.origin, RRType.SOA)
        if soa is None:
            return make_response(query, Rcode.SERVFAIL)
        response = make_response(query)
        response.authoritative = True
        response.answer.append(soa)
        for rrset in zone.iter_rrsets():
            if rrset is soa:
                continue
            response.answer.append(rrset)
        response.answer.append(soa)
        return response

    # -- response assembly helpers --------------------------------------------------

    def _attach_sigs(self, zone: Zone, section: List[RRset], owner_hint: Name) -> None:
        """Append RRSIGs covering the RRsets already in *section*.

        Idempotent: RRsets that already have a covering RRSIG RRset in
        the section are skipped, so proof-assembly code may call this
        after each addition.
        """
        already_covered = set()
        for rrset in section:
            if int(rrset.rrtype) == int(RRType.RRSIG):
                for sig in rrset.rdatas:
                    already_covered.add((rrset.name, int(sig.type_covered)))
        for rrset in list(section):
            if int(rrset.rrtype) == int(RRType.RRSIG):
                continue
            if (rrset.name, int(rrset.rrtype)) in already_covered:
                continue
            sig_rrset = zone.get_rrset(rrset.name, RRType.RRSIG)
            if sig_rrset is None:
                continue
            covering = [
                sig
                for sig in sig_rrset.rdatas
                if int(sig.type_covered) == int(rrset.rrtype)
            ]
            if covering:
                section.append(
                    RRset(rrset.name, RRType.RRSIG, sig_rrset.ttl, covering)
                )
                already_covered.add((rrset.name, int(rrset.rrtype)))

    def _attach_wildcard_sigs(self, zone: Zone, result, response: Message) -> None:
        wildcard = result.cut_name
        synthesized = result.rrset
        sig_rrset = zone.get_rrset(wildcard, RRType.RRSIG)
        if sig_rrset is not None:
            covering = [
                sig
                for sig in sig_rrset.rdatas
                if int(sig.type_covered) == int(synthesized.rrtype)
            ]
            if covering:
                response.answer.append(
                    RRset(synthesized.name, RRType.RRSIG, sig_rrset.ttl, covering)
                )
        nsec = self._covering_nsec(zone, synthesized.name)
        if nsec is not None:
            response.authority.append(nsec)
            self._attach_sigs(zone, response.authority, synthesized.name)

    def _attach_soa(self, zone: Zone, response: Message, want_dnssec: bool) -> None:
        soa = zone.get_rrset(zone.origin, RRType.SOA)
        if soa is not None:
            response.authority.append(soa)
            if want_dnssec:
                self._attach_sigs(zone, response.authority, zone.origin)

    def _attach_nsec(self, zone: Zone, qname: Name, response: Message) -> None:
        nsec = zone.get_rrset(qname, RRType.NSEC)
        if nsec is not None:
            response.authority.append(nsec)
            self._attach_sigs(zone, response.authority, qname)
            return
        matching = self._matching_nsec3(zone, qname)
        if matching is not None:
            response.authority.append(matching)
            self._attach_sigs(zone, response.authority, matching.name)

    def _attach_nxdomain_proof(self, zone: Zone, qname: Name, response: Message) -> None:
        """Attach the NSEC covering the hole for *qname* (plus the one
        proving no wildcard, when distinct), or the NSEC3 equivalents."""
        covering = self._covering_nsec(zone, qname)
        if covering is None:
            self._attach_nsec3_nxdomain_proof(zone, qname, response)
            return
        response.authority.append(covering)
        wildcard = zone.origin.child("*")
        wild_cover = self._covering_nsec(zone, wildcard)
        if wild_cover is not None and wild_cover.name != covering.name:
            response.authority.append(wild_cover)
        self._attach_sigs(zone, response.authority, qname)

    # -- NSEC3 (RFC 5155 §7.2) ---------------------------------------------

    def _nsec3_params(self, zone: Zone):
        param_rrset = zone.get_rrset(zone.origin, RRType.NSEC3PARAM)
        if param_rrset is None or not len(param_rrset):
            return None
        param = param_rrset.rdatas[0]
        return param.salt, param.iterations

    def _matching_nsec3(self, zone: Zone, qname: Name) -> Optional[RRset]:
        """The NSEC3 whose owner hash matches *qname* (NODATA proofs)."""
        params = self._nsec3_params(zone)
        if params is None:
            return None
        from repro.dnssec.nsec import nsec3_hash_label

        owner = zone.origin.child(nsec3_hash_label(qname, *params))
        return zone.get_rrset(owner, RRType.NSEC3)

    def _covering_nsec3(self, zone: Zone, qname: Name) -> Optional[RRset]:
        """The NSEC3 whose hash span covers *qname* (NXDOMAIN proofs)."""
        params = self._nsec3_params(zone)
        if params is None:
            return None
        from repro.dnssec.nsec import nsec3_hash, nsec3_label_to_hash

        target = nsec3_hash(qname, *params)
        best: Optional[RRset] = None
        best_hash = None
        last: Optional[RRset] = None
        last_hash = None
        for name in zone.names():
            rrset = zone.get_rrset(name, RRType.NSEC3)
            if rrset is None:
                continue
            owner_hash = nsec3_label_to_hash(name.labels[0])
            if owner_hash <= target and (best_hash is None or owner_hash > best_hash):
                best = rrset
                best_hash = owner_hash
            if last_hash is None or owner_hash > last_hash:
                last = rrset
                last_hash = owner_hash
        # Wrap-around: target before the first hash → last NSEC3 covers it.
        return best if best is not None else last

    def _attach_nsec3_nxdomain_proof(self, zone: Zone, qname: Name, response: Message) -> None:
        covering = self._covering_nsec3(zone, qname)
        if covering is None:
            return
        response.authority.append(covering)
        wildcard_cover = self._covering_nsec3(zone, zone.origin.child("*"))
        if wildcard_cover is not None and wildcard_cover.name != covering.name:
            response.authority.append(wildcard_cover)
        closest = self._matching_nsec3(zone, zone.origin)
        if closest is not None and closest.name not in (
            covering.name,
            wildcard_cover.name if wildcard_cover else None,
        ):
            response.authority.append(closest)
        for rrset in list(response.authority):
            if int(rrset.rrtype) == int(RRType.NSEC3):
                self._attach_sigs(zone, response.authority, rrset.name)

    def _covering_nsec(self, zone: Zone, qname: Name) -> Optional[RRset]:
        key = qname.canonical_key()
        best: Optional[RRset] = None
        best_key = None
        for name in zone.names():
            nsec = zone.get_rrset(name, RRType.NSEC)
            if nsec is None:
                continue
            name_key = name.canonical_key()
            if name_key <= key and (best_key is None or name_key > best_key):
                best = nsec
                best_key = name_key
        return best

    def _attach_referral(
        self, zone: Zone, cut: Name, response: Message, want_dnssec: bool
    ) -> None:
        ns_rrset = zone.get_rrset(cut, RRType.NS)
        if ns_rrset is not None:
            response.authority.append(ns_rrset)
            # Glue: addresses for in-bailiwick NS targets.
            for ns in ns_rrset.rdatas:
                target = getattr(ns, "target", None)
                if target is None or not target.is_subdomain_of(zone.origin):
                    continue
                for addr_type in (RRType.A, RRType.AAAA):
                    glue = zone.get_rrset(target, addr_type)
                    if glue is not None:
                        response.additional.append(glue)
        if want_dnssec:
            ds_rrset = zone.get_rrset(cut, RRType.DS)
            if ds_rrset is not None:
                response.authority.append(ds_rrset)
                self._attach_sigs(zone, response.authority, cut)
            else:
                # Prove the delegation is insecure.
                nsec = zone.get_rrset(cut, RRType.NSEC)
                if nsec is not None:
                    response.authority.append(nsec)
                    self._attach_sigs(zone, response.authority, cut)

    def _chase_cname(
        self,
        zone: Zone,
        cname_rrset: RRset,
        qtype: RRType,
        response: Message,
        want_dnssec: bool,
        max_depth: int = 8,
    ) -> None:
        """Follow an in-zone CNAME chain, appending answers."""
        target = cname_rrset.rdatas[0].target
        for _ in range(max_depth):
            result = zone.lookup(target, qtype)
            if result.status == LookupStatus.ANSWER:
                response.answer.append(result.rrset)
                if want_dnssec:
                    self._attach_sigs(zone, response.answer, target)
                return
            if result.status == LookupStatus.CNAME:
                response.answer.append(result.rrset)
                if want_dnssec:
                    self._attach_sigs(zone, response.answer, target)
                target = result.rrset.rdatas[0].target
                continue
            return

    def __repr__(self) -> str:
        return f"<AuthoritativeServer {self.server_id} zones={len(self.zone_apexes())}>"
