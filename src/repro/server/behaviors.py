"""Operator-quirk behaviours layered onto authoritative servers.

Each behaviour models a real-world server pathology the paper observed:

* :class:`LegacyUnknownTypeBehavior` — pre-RFC 3597 servers that return
  an error instead of NODATA for unknown query types (the paper's 7.6 M
  domains whose nameservers "failed to respond, or returned an error"
  for CDS/CDNSKEY queries).
* :class:`AfternicParkingBehavior` — GoDaddy's Afternic parking NSes,
  which answer *every* query identically, creating "the illusion of a
  zone cut at every level of the DNS tree" (the ``desc.io`` incident).
* :class:`TransientFailureBehavior` — servers that intermittently
  SERVFAIL or time out (deSEC's transient scan failures in §4.4).
* :class:`DropQueriesBehavior` — servers that never answer.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, TYPE_CHECKING

from repro.dns.message import Message, make_response
from repro.dns.name import Name
from repro.dns.rdata import NS
from repro.dns.rrset import RRset
from repro.dns.types import Rcode, RRType

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.nameserver import AuthoritativeServer


class ServerBehavior:
    """Hook points around the default answer algorithm.

    ``intercept`` may return a complete response to short-circuit
    processing; ``postprocess`` may rewrite the computed response.
    """

    def intercept(self, server: "AuthoritativeServer", query: Message) -> Optional[Message]:
        return None

    def postprocess(
        self, server: "AuthoritativeServer", query: Message, response: Message
    ) -> Message:
        return response


# Types a pre-2003 (pre-RFC 3597) server implementation knows about.
_ANCIENT_TYPES = {
    int(RRType.A),
    int(RRType.NS),
    int(RRType.CNAME),
    int(RRType.SOA),
    int(RRType.PTR),
    int(RRType.MX),
    int(RRType.TXT),
    int(RRType.AAAA),
}


class LegacyUnknownTypeBehavior(ServerBehavior):
    """Return an error for query types the (ancient) implementation does
    not know, instead of the NODATA that RFC 3597 requires."""

    def __init__(self, rcode: Rcode = Rcode.SERVFAIL):
        self.rcode = rcode

    def intercept(self, server: "AuthoritativeServer", query: Message) -> Optional[Message]:
        if query.question is None:
            return None
        if int(query.question.rrtype) not in _ANCIENT_TYPES:
            return make_response(query, self.rcode)
        return None


class AfternicParkingBehavior(ServerBehavior):
    """Answer every query for any name with the same parking NS records.

    Because a response to an NS query at *any* depth looks like a
    delegation, scanners perceive a zone cut at every level — exactly the
    failure mode that disqualified ``copacabanasomostudestino.com.bo``'s
    signal chain in the paper.
    """

    def __init__(self, park_ns: Iterable[str] = ("ns1.namefind.com", "ns2.namefind.com")):
        self.park_ns = [NS(name) for name in park_ns]

    def intercept(self, server: "AuthoritativeServer", query: Message) -> Optional[Message]:
        if query.question is None:
            return None
        response = make_response(query)
        response.authoritative = True
        if int(query.question.rrtype) == int(RRType.NS):
            response.answer.append(
                RRset(query.question.name, RRType.NS, 3600, list(self.park_ns))
            )
        # Any other type: NOERROR with empty answer (looks like NODATA
        # but without an SOA — thoroughly confusing, as in the wild).
        return response


class TransientFailureBehavior(ServerBehavior):
    """SERVFAIL the first *failures* queries for each listed name.

    Deterministic by construction: a rescan of the same name succeeds,
    reproducing the paper's "subsequent check of this zone succeeded"
    observations.
    """

    def __init__(self, names: Iterable[Name], failures: int = 1, rcode: Rcode = Rcode.SERVFAIL):
        self._remaining = {name: failures for name in names}
        self.rcode = rcode

    def intercept(self, server: "AuthoritativeServer", query: Message) -> Optional[Message]:
        if query.question is None:
            return None
        qname = query.question.name
        remaining = self._remaining.get(qname, 0)
        if remaining > 0:
            self._remaining[qname] = remaining - 1
            return make_response(query, self.rcode)
        return None


class CorruptSignaturesBehavior(ServerBehavior):
    """Serve bogus RRSIGs for listed names, a limited number of times.

    Models deSEC's transiently invalid signal-zone signatures (§4.4):
    the first scan sees validation failures, a re-check succeeds.
    """

    def __init__(self, names: Iterable[Name], failures: int = 1):
        self._remaining = {name: failures for name in names}

    def postprocess(
        self, server: "AuthoritativeServer", query: Message, response: Message
    ) -> Message:
        if query.question is None:
            return response
        qname = query.question.name
        remaining = self._remaining.get(qname, 0)
        if remaining <= 0:
            return response
        self._remaining[qname] = remaining - 1
        from repro.dns.rdata import RRSIG
        from repro.dnssec.signer import corrupt_signature

        for section in (response.answer, response.authority):
            for index, rrset in enumerate(section):
                if int(rrset.rrtype) != int(RRType.RRSIG):
                    continue
                corrupted = RRset(
                    rrset.name,
                    RRType.RRSIG,
                    rrset.ttl,
                    [
                        corrupt_signature(rd) if isinstance(rd, RRSIG) else rd
                        for rd in rrset.rdatas
                    ],
                )
                section[index] = corrupted
        return response


class StripSignaturesBehavior(ServerBehavior):
    """Serve answers for listed names with every RRSIG removed.

    Models spoofed signal records (the scenario plane's SpoofSign
    operator): the data looks plausible but carries no proof of origin,
    exactly what an off-path injector can produce.  Unlike
    :class:`CorruptSignaturesBehavior` this is stateless and permanent —
    a rescan sees the same stripped answer on every layout, which is
    what keeps scenario worlds byte-identical across worker counts.
    """

    def __init__(self, names: Iterable[Name]):
        self.names = set(names)

    def postprocess(
        self, server: "AuthoritativeServer", query: Message, response: Message
    ) -> Message:
        if query.question is None or query.question.name not in self.names:
            return response
        for section in (response.answer, response.authority):
            section[:] = [
                rrset for rrset in section if int(rrset.rrtype) != int(RRType.RRSIG)
            ]
        return response


class SyntheticCutBehavior(ServerBehavior):
    """Answer NS queries at specific names with a fabricated NS RRset.

    Creates the *illusion* of a zone cut (RFC 9615 forbids cuts inside
    signaling names) without actually delegating — the configuration
    error behind the paper's ``copacabanasomostudestino.com.bo`` case.
    """

    def __init__(self, names: Iterable[Name], park_ns: Iterable[str] = ("ns1.namefind.com", "ns2.namefind.com")):
        self.names = set(names)
        self.park_ns = [NS(name) for name in park_ns]

    def intercept(self, server: "AuthoritativeServer", query: Message) -> Optional[Message]:
        if query.question is None:
            return None
        if int(query.question.rrtype) != int(RRType.NS):
            return None
        if query.question.name not in self.names:
            return None
        response = make_response(query)
        response.authoritative = True
        response.answer.append(RRset(query.question.name, RRType.NS, 3600, list(self.park_ns)))
        return response


class DropQueriesBehavior(ServerBehavior):
    """Never answer (the network layer turns ``None`` into a timeout).

    Models lame or firewalled nameservers; with *qtypes* set, only the
    listed query types are dropped (legacy middleboxes eating unknown
    types without even an error).
    """

    def __init__(self, qtypes: Optional[Iterable[RRType]] = None):
        self.qtypes: Optional[Set[int]] = (
            None if qtypes is None else {int(t) for t in qtypes}
        )

    def should_drop(self, query: Message) -> bool:
        if self.qtypes is None:
            return True
        return query.question is not None and int(query.question.rrtype) in self.qtypes

    def intercept(self, server: "AuthoritativeServer", query: Message) -> Optional[Message]:
        # The sentinel is detected by SimulatedNetwork, which raises a
        # timeout instead of delivering a response.
        return None
