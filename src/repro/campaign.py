"""End-to-end measurement campaigns: build → scan → analyze → re-check.

This is the one-call orchestration used by the CLI, the examples, and
the benchmark harness.  It mirrors the paper's methodology, including
the re-check pass for zones whose signal errors might be transient
(§4.4: "following further checks, these were transient errors").

The campaign API is config-first: a frozen :class:`CampaignConfig`
carries every knob (scale, seed, store, workers, telemetry, …),
validates the mutually-exclusive combinations in one place, and
round-trips losslessly through the store manifest so a resume rebuilds
the exact configuration the campaign started with.
:func:`run_campaign` accepts a :class:`CampaignConfig` and nothing
else; the historical per-setting keyword form was retired when the
epoch-first monitoring API landed.

A campaign may also be one *epoch* of a continuous-monitoring timeline
(``epoch=...`` + ``monitor=...``): the world is rebuilt and replayed to
that simulated week, and for epochs past the baseline only the zones
the week's events touched are scanned — a delta campaign.  The
orchestration lives in :class:`repro.monitor.Monitor`; the config layer
here only knows how to reproduce the world and the changed subset.

Campaigns can run fully in memory (the default, results returned as a
list) or against a :mod:`repro.store` warehouse (``store_dir=...``):
results are then committed shard-by-shard as the scan proceeds, a
killed campaign resumes from its manifest via :func:`resume_campaign`,
and the report is computed by streaming the store back through the
pipeline — the same store-then-analyse discipline as the paper's
6.5 TiB archive.  With ``telemetry=True`` the campaign additionally
streams deterministic counters/spans/progress events into
``<store>/events/`` (see :mod:`repro.obs`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Union

from repro.chaos import ChaosConfig, RetryPolicy
from repro.core.bootstrap import INCORRECT_OUTCOMES, SignalOutcome, assess_zone
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.ecosystem.world import World, build_world
from repro.monitor.spec import MonitorSpec
from repro.scenarios.spec import ScenarioSpec
from repro.obs.events import events_path
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, as_telemetry
from repro.reports.table3 import apply_recheck
from repro.scanner.fleet import MachineReport
from repro.scanner.results import ZoneScanResult


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines one measurement campaign.

    Frozen so a config can be hashed, reused, and recorded without
    surprise mutation.  ``validate()`` centralises the combination
    rules; ``manifest_config()`` / ``from_manifest()`` give a lossless
    round-trip through a store manifest (the manifest's own top-level
    seed/scale/num_shards/compress fields carry those four).
    """

    scale: float = 1 / 100_000
    seed: int = 1
    recheck: bool = True
    use_sources: bool = False
    store_dir: Optional[Path] = None
    checkpoint_every: Optional[int] = None
    num_shards: Optional[int] = None
    compress: bool = True
    stop_after: Optional[int] = None
    workers: Optional[int] = None
    # Concurrent in-flight zones per scan machine (repro.sched): None →
    # the legacy serial scan loop; N >= 1 overlaps up to N zones on a
    # deterministic event loop.  Composes with workers=M — every worker
    # process runs its own loop.  Reports are byte-identical either
    # way; only the simulated campaign duration drops.
    in_flight: Optional[int] = None
    # False (default) → zero-overhead NullTelemetry; True → a fresh
    # hub; or pass a configured Telemetry instance directly.
    telemetry: Union[bool, Telemetry] = False
    # Fault injection (repro.chaos): None → fault-free network.  A
    # chaotic campaign implies a retry policy (see effective_retry) so
    # the differential convergence invariant holds by construction.
    chaos: Optional[ChaosConfig] = None
    # Scanner/resolver retry policy; None → the legacy single-retry
    # behaviour (or the chaos default when chaos is enabled).
    retry: Optional[RetryPolicy] = None
    # Transport: "sim" moves messages through the in-memory fabric;
    # "wire" (repro.wire) hosts the authoritative fleet on real loopback
    # sockets and scans over asyncio UDP/TCP.  Wire mode promises the
    # same analysis tables at the same seed/scale — not the same event
    # streams or simulated durations (real I/O reorders the schedule).
    transport: str = "sim"
    # Paced replay for the wire engine: 0.0 (default) collapses every
    # simulated wait to "now" (run flat out); N > 0 plays simulated
    # seconds back at N× wall speed through the ClockBridge.  Wire-only:
    # the in-memory fabric has no wall clock to pace against.
    time_scale: float = 0.0
    # Monitoring-plane leaf: which simulated week this campaign observes
    # (0 = baseline full scan, >= 1 = delta over the changed subset) and
    # the seeded event stream that evolves the world between weeks.
    # Both or neither; requires a store; the orchestration loop lives in
    # repro.monitor.Monitor.
    epoch: Optional[int] = None
    parent_epoch: Optional[int] = None
    monitor: Optional[MonitorSpec] = None
    # Key-transition / adversarial-operator plane for *plain* campaigns
    # (repro.scenarios).  Epoch campaigns carry scenarios inside the
    # monitor spec instead, so every replaying participant agrees on
    # the scenario population; validate() rejects setting both.
    scenarios: Optional[ScenarioSpec] = None

    def __post_init__(self):
        if self.store_dir is not None and not isinstance(self.store_dir, Path):
            object.__setattr__(self, "store_dir", Path(self.store_dir))
        if self.epoch is not None and self.epoch > 0 and self.parent_epoch is None:
            object.__setattr__(self, "parent_epoch", self.epoch - 1)

    def effective_retry(self) -> Optional[RetryPolicy]:
        """The retry policy the campaign actually runs with: the
        configured one, or the chaos default when chaos is on (a chaotic
        scan without retries cannot converge)."""
        if self.retry is not None:
            return self.retry
        if self.chaos is not None and self.chaos.enabled:
            return RetryPolicy.default()
        return None

    def validate(self, world: Optional[World] = None) -> None:
        """Reject impossible combinations (one place, one message each)."""
        if self.in_flight is not None and self.in_flight < 1:
            raise ValueError(f"in_flight must be >= 1 (got {self.in_flight})")
        if self.chaos is not None and self.chaos.enabled and self.chaos.max_consecutive:
            retry = self.effective_retry()
            if retry is None or retry.attempts <= self.chaos.max_consecutive:
                raise ValueError(
                    "chaos convergence needs retry attempts > chaos.max_consecutive "
                    f"(got attempts={retry.attempts if retry else 1}, "
                    f"max_consecutive={self.chaos.max_consecutive})"
                )
        if self.workers is not None:
            if self.store_dir is None:
                raise ValueError("workers=N requires a store (store_dir=...)")
            if world is not None:
                raise ValueError(
                    "workers=N rebuilds the world per process; pass scale/seed, not world"
                )
            if self.stop_after is not None:
                raise ValueError("stop_after is not supported with workers=N")
        elif self.stop_after is not None and self.store_dir is None:
            raise ValueError("stop_after requires a store (store_dir=...)")
        if self.transport not in ("sim", "wire"):
            raise ValueError(f"transport must be 'sim' or 'wire' (got {self.transport!r})")
        if self.transport == "wire":
            if self.chaos is not None and self.chaos.enabled:
                raise ValueError(
                    "transport='wire' is incompatible with chaos: the fault plane "
                    "injects into the simulated fabric, not real sockets"
                )
            if self.workers is not None:
                raise ValueError(
                    "transport='wire' runs single-process (one shared socket "
                    "engine); combine with in_flight=N for concurrency"
                )
        if self.time_scale < 0:
            raise ValueError(f"time_scale must be >= 0 (got {self.time_scale})")
        if self.time_scale and self.transport != "wire":
            raise ValueError(
                "time_scale paces the wire engine's clock bridge; it requires "
                "transport='wire'"
            )
        if self.epoch is not None:
            if self.epoch < 0:
                raise ValueError(f"epoch must be >= 0 (got {self.epoch})")
            if self.monitor is None:
                raise ValueError("epoch=N requires a monitor spec (monitor=MonitorSpec(...))")
            if self.store_dir is None:
                raise ValueError("epoch campaigns require a store (store_dir=...)")
            if world is not None:
                raise ValueError(
                    "epoch campaigns replay the world from the monitor spec; "
                    "pass scale/seed, not world"
                )
            if self.recheck:
                raise ValueError(
                    "epoch campaigns require recheck=False: re-check outcomes are "
                    "not persisted in store records, so a rechecked delta chain "
                    "could not render identically to a from-scratch scan"
                )
            if self.use_sources:
                raise ValueError(
                    "epoch campaigns scan the change feed, not an acquired "
                    "source list (use_sources must be False)"
                )
            expected_parent = None if self.epoch == 0 else self.epoch - 1
            if self.parent_epoch != expected_parent:
                raise ValueError(
                    f"epoch {self.epoch} must chain onto parent_epoch "
                    f"{expected_parent} (got {self.parent_epoch})"
                )
        elif self.monitor is not None:
            raise ValueError("monitor=... requires epoch=N (which week to observe)")
        if self.scenarios is not None and self.monitor is not None:
            raise ValueError(
                "scenarios ride the monitor spec for epoch campaigns "
                "(use MonitorSpec(scenarios=...), not CampaignConfig.scenarios)"
            )

    # -- manifest round-trip ----------------------------------------------

    def manifest_config(self) -> Dict[str, Any]:
        """The ``config`` dict recorded in the store manifest.

        Keys with default values are omitted (except the two the
        analysis layer always reads), so the stored dict stays minimal
        and byte-stable across versions.
        """
        config: Dict[str, Any] = {
            "recheck": self.recheck,
            "use_sources": self.use_sources,
        }
        if self.workers is not None:
            config["workers"] = self.workers
        if self.in_flight is not None:
            config["in_flight"] = self.in_flight
        if self.checkpoint_every is not None:
            config["checkpoint_every"] = self.checkpoint_every
        if self.telemetry:
            config["telemetry"] = True
        if self.chaos is not None:
            config["chaos"] = self.chaos.to_dict()
        if self.retry is not None:
            config["retry"] = self.retry.to_dict()
        if self.transport != "sim":
            config["transport"] = self.transport
        if self.time_scale:
            config["time_scale"] = self.time_scale
        if self.monitor is not None:
            config["monitor"] = self.monitor.to_dict()
        if self.scenarios is not None:
            config["scenarios"] = self.scenarios.to_dict()
        return config

    @classmethod
    def from_manifest(cls, manifest, store_dir: Optional[Path] = None) -> "CampaignConfig":
        """Rebuild the config a stored campaign was started with."""
        config = manifest.config
        chaos = config.get("chaos")
        retry = config.get("retry")
        return cls(
            epoch=getattr(manifest, "epoch", None),
            parent_epoch=getattr(manifest, "parent_epoch", None),
            monitor=MonitorSpec.from_dict(config.get("monitor")),
            scenarios=ScenarioSpec.from_dict(config.get("scenarios")),
            scale=manifest.scale,
            seed=manifest.seed,
            recheck=bool(config.get("recheck", True)),
            use_sources=bool(config.get("use_sources", False)),
            store_dir=Path(store_dir) if store_dir is not None else None,
            checkpoint_every=config.get("checkpoint_every"),
            num_shards=manifest.num_shards,
            compress=manifest.compress,
            workers=config.get("workers"),
            in_flight=config.get("in_flight"),
            telemetry=bool(config.get("telemetry", False)),
            chaos=ChaosConfig.from_dict(chaos) if chaos is not None else None,
            retry=RetryPolicy.from_dict(retry) if retry is not None else None,
            transport=config.get("transport", "sim"),
            time_scale=float(config.get("time_scale", 0.0)),
        )


_CONFIG_FIELDS = frozenset(f.name for f in fields(CampaignConfig))


@dataclass
class CampaignResult:
    """Everything a campaign produces."""

    world: World
    results: List[ZoneScanResult]
    report: AnalysisReport
    rechecked: Dict[str, SignalOutcome]
    # Set for store-backed campaigns; ``results`` is then empty — the
    # records live in the store and stream back via StoreReader.
    store_dir: Optional[Path] = None
    # Set for parallel campaigns: one entry per worker process, with
    # that machine's zone/query counts and simulated clock.
    machines: Optional[List["MachineReport"]] = None
    # Set when the campaign ran with telemetry enabled: the (closed)
    # hub, with all counters and in-memory events still attached.
    telemetry: Optional[Telemetry] = None

    @property
    def simulated_duration(self) -> float:
        """Seconds of simulated wall-clock the scan consumed (rate
        limits included) — the analogue of the paper's month-long scan.

        For a parallel campaign this is the slowest machine's clock (the
        fleet model of App. D); otherwise the shared world clock."""
        if self.machines:
            return max(machine.duration for machine in self.machines)
        return self.world.network.clock.now()


def _scan_list(world: World, use_sources: bool):
    if use_sources:
        from repro.scanner.sources import compile_scan_list

        return compile_scan_list(world).names
    return world.scan_list


def _recheck_pass(
    scanner,
    report: AnalysisReport,
    double_check: FrozenSet[str] = frozenset(),
    telemetry=NULL_TELEMETRY,
) -> Dict[str, SignalOutcome]:
    """The §4.4 re-check: rescan zones with incorrect signal outcomes.

    *double_check* names zones whose stored result came from a previous
    process (a resumed campaign).  Their first, transiently-failing
    observation was consumed in *that* process's world; the resumed
    world is fresh, so these zones get one extra rescan — the same
    observation budget (initial scan + re-check) every other zone has —
    which keeps a resumed report identical to an uninterrupted one.
    """
    with telemetry.span("recheck") as span:
        suspicious = [
            assessment.zone
            for assessment in report.assessments
            if assessment.signal_outcome in INCORRECT_OUTCOMES
        ]
        updates: Dict[str, SignalOutcome] = {}
        for zone in suspicious:
            rescan = scanner.scan_zone(zone)
            outcome = assess_zone(rescan).signal_outcome
            if outcome in INCORRECT_OUTCOMES and zone in double_check:
                rescan = scanner.scan_zone(zone)
                outcome = assess_zone(rescan).signal_outcome
            updates[zone] = outcome
        apply_recheck(report, updates)
        resolved = {
            zone: outcome
            for zone, outcome in updates.items()
            if outcome not in INCORRECT_OUTCOMES
        }
        span["suspicious"] = len(suspicious)
        span["resolved"] = len(resolved)
    return resolved


def run_campaign(config: Optional[CampaignConfig] = None, /, world=None, **legacy) -> CampaignResult:
    """Run one full measurement campaign.

    Takes a :class:`CampaignConfig` and nothing else::

        run_campaign(CampaignConfig(scale=1e-4, seed=7, telemetry=True))

    A pre-built *world* may accompany the config for sequential
    campaigns (parallel and epoch campaigns rebuild worlds per
    process).  The historical per-setting keyword form is gone;
    stray keywords raise a :class:`TypeError` naming the
    :class:`CampaignConfig` field to use instead.

    With ``recheck=True``, zones classified with incorrect signal zones
    are scanned a second time and the report updated with the outcome —
    transient server failures (deSEC's bogus-signature episodes) resolve
    to CORRECT, persistent misconfigurations stay put.

    With ``use_sources=True`` the scan list is *acquired* the way the
    paper acquired it (§3: CZDS dumps, AXFR, private arrangements,
    CT-log sampling) instead of taken from the generator's ground truth
    — CT-log-only ccTLDs are then scanned partially.

    With ``store_dir`` set, every result is persisted to a sharded
    campaign store as it is scanned (checkpointed every
    *checkpoint_every* records) instead of being kept in memory, and
    the report is computed by streaming the store.  ``stop_after``
    aborts the scan after N zones with the store left in-progress —
    the programmatic stand-in for a crash; finish it later with
    :func:`resume_campaign`.

    With ``workers=N`` (N >= 1, requires ``store_dir``) the scan is
    executed by N independent processes, each owning a shard-bucket
    range of the zone list — see :mod:`repro.parallel`.  The resulting
    report is byte-identical to the sequential one at the same
    seed/scale.

    With ``telemetry=True`` (or a :class:`repro.obs.Telemetry`
    instance) the campaign emits deterministic counters, simulated-clock
    spans, and progress events — streamed into ``<store>/events/`` for
    store-backed campaigns, kept on ``result.telemetry.events``
    otherwise.
    """
    if legacy:
        known = sorted(set(legacy) & _CONFIG_FIELDS)
        if known:
            hints = ", ".join(f"CampaignConfig({name}=...)" for name in known)
            raise TypeError(
                "run_campaign() no longer accepts individual settings as "
                f"keyword arguments; pass {hints} instead"
            )
        raise TypeError(
            f"run_campaign() got unexpected keyword arguments: {', '.join(sorted(legacy))}"
        )
    if config is None:
        config = CampaignConfig()
    elif not isinstance(config, CampaignConfig):
        raise TypeError(
            "run_campaign() takes a CampaignConfig as its only positional argument"
        )
    config.validate(world=world)
    return _run_validated(config, world)


def _epoch_world_and_subset(config: CampaignConfig):
    """The replayed world for ``config.epoch`` and, for delta epochs,
    the changed-zone scan subset (None at epoch 0: scan everything).

    Events are applied to a freshly rebuilt world *before* any query is
    served, so every materialisation cache is still cold — exactly the
    state a from-scratch scan of the same week would see.
    """
    from repro.monitor.timeline import scan_world

    return scan_world(config.scale, config.seed, monitor=config.monitor, epoch=config.epoch)


def _run_validated(config: CampaignConfig, world: Optional[World]) -> CampaignResult:
    if config.workers is not None:
        from repro.parallel import run_parallel_campaign

        return run_parallel_campaign(
            store_dir=config.store_dir,
            scale=config.scale,
            seed=config.seed,
            workers=config.workers,
            recheck=config.recheck,
            use_sources=config.use_sources,
            num_shards=config.num_shards,
            compress=config.compress,
            checkpoint_every=config.checkpoint_every,
            telemetry=config.telemetry,
            chaos=config.chaos,
            retry=config.effective_retry(),
            in_flight=config.in_flight,
            manifest_config=config.manifest_config(),
            epoch=config.epoch,
            parent_epoch=config.parent_epoch,
            monitor=config.monitor,
            scenarios=config.scenarios,
        )

    scan_override = None
    if config.epoch is not None:
        world, scan_override = _epoch_world_and_subset(config)
    telemetry = as_telemetry(config.telemetry)
    if world is None:
        world = build_world(scale=config.scale, seed=config.seed, scenarios=config.scenarios)
    if config.chaos is not None and config.chaos.enabled:
        world.network.install_chaos(config.chaos)
    # Campaigns never mutate zones mid-run, so repeated identical queries
    # can be served from cached response wires.
    world.network.enable_response_cache()
    telemetry.bind_clock(world.network.clock)
    wire_network = _wire_network(config, world)
    scanner = world.make_scanner(
        telemetry=telemetry,
        retry=config.effective_retry(),
        in_flight=config.in_flight,
        network=wire_network,
    )
    try:
        return _run_scan(config, world, scanner, telemetry, scan_override=scan_override)
    finally:
        if wire_network is not None:
            wire_network.close()


def _wire_network(config: CampaignConfig, world: World):
    """Stand up the live socket fleet for ``transport='wire'`` (None
    for the simulated fabric)."""
    if config.transport != "wire":
        return None
    from repro.wire import WireNetwork

    return WireNetwork(world.network, time_scale=config.time_scale).start()


def _run_scan(
    config: CampaignConfig, world: World, scanner, telemetry, scan_override=None
) -> CampaignResult:
    # *scan_override* narrows the campaign to an explicit zone list —
    # the delta-epoch change feed.
    scan_list = scan_override if scan_override is not None else _scan_list(world, config.use_sources)

    if config.store_dir is None:
        results = []
        for result in scanner.scan_iter(scan_list):
            results.append(result)
            if telemetry.enabled:
                telemetry.maybe_progress(len(results), len(scan_list))
        pipeline = AnalysisPipeline(world.operator_db)
        report = pipeline.analyze(results)
        rechecked: Dict[str, SignalOutcome] = {}
        if config.recheck:
            rechecked = _recheck_pass(scanner, report, telemetry=telemetry)
        return CampaignResult(
            world=world,
            results=results,
            report=report,
            rechecked=rechecked,
            telemetry=_seal(telemetry, scanner),
        )

    # -- store-backed campaign: persist-as-you-scan ------------------------
    from repro.store import DEFAULT_CHECKPOINT_EVERY, DEFAULT_NUM_SHARDS, CampaignStore
    from repro.store.reader import StoreReader

    store = CampaignStore.create(
        config.store_dir,
        seed=world.seed,
        scale=world.scale,
        num_shards=config.num_shards or DEFAULT_NUM_SHARDS,
        compress=config.compress,
        zones_total=len(scan_list),
        config=config.manifest_config(),
        checkpoint_every=config.checkpoint_every or DEFAULT_CHECKPOINT_EVERY,
        telemetry=telemetry,
        epoch=config.epoch,
        parent_epoch=config.parent_epoch,
    )
    if telemetry.enabled:
        telemetry.open_sink(events_path(store.root))
    interrupted = False
    scanned = 0
    with store:
        for result in scanner.scan_iter(scan_list, sink=store.append):
            scanned += 1
            if telemetry.enabled:
                telemetry.maybe_progress(scanned, len(scan_list))
            if config.stop_after is not None and scanned >= config.stop_after:
                interrupted = True
                break
    if interrupted:
        # The context manager checkpointed whatever was buffered; the
        # manifest stays in-progress, exactly like a crash after the
        # last checkpoint.
        reader = StoreReader(store.root)
        report = AnalysisPipeline(world.operator_db).analyze(reader.iter_results())
        return CampaignResult(
            world=world,
            results=[],
            report=report,
            rechecked={},
            store_dir=store.root,
            telemetry=_seal(telemetry, scanner),
        )
    store.complete()

    reader = StoreReader(store.root)
    report = reader.reanalyze(world.operator_db)
    rechecked = {}
    if config.recheck:
        rechecked = _recheck_pass(scanner, report, telemetry=telemetry)
    return CampaignResult(
        world=world,
        results=[],
        report=report,
        rechecked=rechecked,
        store_dir=store.root,
        telemetry=_seal(telemetry, scanner),
    )


def _seal(telemetry, scanner) -> Optional[Telemetry]:
    """Final counter snapshot + flush + close; None when disabled."""
    if not telemetry.enabled:
        return None
    telemetry.capture_scanner(scanner)
    telemetry.flush_counters()
    telemetry.close()
    return telemetry


def resume_campaign(
    store_dir: Path,
    world: Optional[World] = None,
    checkpoint_every: Optional[int] = None,
    workers: Optional[int] = None,
    telemetry=None,
    chaos: Optional[ChaosConfig] = None,
    retry: Optional[RetryPolicy] = None,
    in_flight: Optional[int] = None,
) -> CampaignResult:
    """Finish an interrupted store-backed campaign.

    Opens the manifest, rebuilds the world at the recorded seed/scale,
    skips every zone already persisted, scans only the remainder
    (checkpointing as it goes), marks the store complete, and produces
    the report by streaming the whole store — byte-identical to the
    report of an uninterrupted campaign at the same seed/scale.

    Campaigns started with ``workers=N`` are resumed in parallel
    automatically (the worker count is recorded in the manifest); pass
    ``workers`` explicitly to repartition the remainder across a
    different number of processes, or to parallelise the remainder of a
    campaign that began sequentially.  Any subset of crashed workers is
    tolerated — completed worker stores are skipped wholesale.

    Campaigns started with telemetry resume with telemetry: the flag
    round-trips through the manifest (:meth:`CampaignConfig.from_manifest`),
    and the resumed process appends to the same event stream.  Likewise
    a chaotic campaign resumes chaotic — the :class:`ChaosConfig` and
    :class:`RetryPolicy` round-trip losslessly through the manifest, so
    the resumed remainder sees the same per-query fault stream the
    uninterrupted campaign would have.
    """
    from repro.store import DEFAULT_CHECKPOINT_EVERY, CampaignStore, StoreError

    root = Path(store_dir)
    # The store is opened exactly once; both the parallel and the
    # sequential route work from this one loaded manifest.
    store = CampaignStore.open(
        root, checkpoint_every=checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    )
    stored = CampaignConfig.from_manifest(store.manifest, store_dir=root)
    if chaos is not None or retry is not None or in_flight is not None:
        # Explicit overrides (the CLI's --chaos/--retries/--in-flight on
        # resume) replace the recorded model for the rest of the scan.
        from dataclasses import replace as _replace

        stored = _replace(
            stored,
            chaos=chaos if chaos is not None else stored.chaos,
            retry=retry if retry is not None else stored.retry,
            in_flight=in_flight if in_flight is not None else stored.in_flight,
        )
        stored.validate()

    if workers is not None or stored.workers:
        if world is not None:
            raise ValueError(
                "parallel resume rebuilds the world per process; do not pass world"
            )
        from repro.parallel import resume_parallel_campaign

        return resume_parallel_campaign(
            root,
            workers=workers,
            checkpoint_every=checkpoint_every,
            telemetry=telemetry,
            store=store,
            chaos=chaos,
            retry=retry,
            in_flight=in_flight,
        )

    from repro.store.reader import StoreReader

    manifest = store.manifest
    hub = as_telemetry(telemetry if telemetry is not None else stored.telemetry)
    store.telemetry = hub
    if hub.enabled:
        hub.open_sink(events_path(root))
    scan_override = None
    if stored.epoch is not None:
        # A delta campaign resumes into the same epoch: replay the world
        # to the recorded week and re-derive the changed subset (the
        # event stream is a pure function of the stored monitor spec).
        if world is not None:
            raise ValueError(
                "epoch campaigns replay the world from the stored monitor "
                "spec; do not pass world"
            )
        world, scan_override = _epoch_world_and_subset(stored)
    elif world is None:
        world = build_world(
            scale=manifest.scale, seed=manifest.seed, scenarios=stored.scenarios
        )
    elif (world.seed, world.scale) != (manifest.seed, manifest.scale):
        raise StoreError(
            f"world (seed={world.seed}, scale={world.scale:g}) does not match "
            f"the store's campaign (seed={manifest.seed}, scale={manifest.scale:g})"
        )
    if stored.chaos is not None and stored.chaos.enabled:
        world.network.install_chaos(stored.chaos)
    world.network.enable_response_cache()
    hub.bind_clock(world.network.clock)
    wire_network = _wire_network(stored, world)
    scanner = world.make_scanner(
        telemetry=hub,
        retry=stored.effective_retry(),
        in_flight=stored.in_flight,
        network=wire_network,
    )
    scan_list = (
        scan_override if scan_override is not None else _scan_list(world, stored.use_sources)
    )

    try:
        done = frozenset(store.completed_zones())
        if not manifest.complete:
            scanned = 0
            remaining = len(scan_list) - len(done)
            with store:
                for _ in scanner.scan_iter(scan_list, skip=done, sink=store.append):
                    scanned += 1
                    if hub.enabled:
                        hub.maybe_progress(scanned, remaining)
            store.complete()

        reader = StoreReader(store.root)
        report = reader.reanalyze(world.operator_db)
        rechecked: Dict[str, SignalOutcome] = {}
        if stored.recheck:
            rechecked = _recheck_pass(scanner, report, double_check=done, telemetry=hub)
        return CampaignResult(
            world=world,
            results=[],
            report=report,
            rechecked=rechecked,
            store_dir=store.root,
            telemetry=_seal(hub, scanner),
        )
    finally:
        if wire_network is not None:
            wire_network.close()
