"""End-to-end measurement campaigns: build → scan → analyze → re-check.

This is the one-call orchestration used by the CLI, the examples, and
the benchmark harness.  It mirrors the paper's methodology, including
the re-check pass for zones whose signal errors might be transient
(§4.4: "following further checks, these were transient errors").

Campaigns can run fully in memory (the default, results returned as a
list) or against a :mod:`repro.store` warehouse (``store_dir=...``):
results are then committed shard-by-shard as the scan proceeds, a
killed campaign resumes from its manifest via :func:`resume_campaign`,
and the report is computed by streaming the store back through the
pipeline — the same store-then-analyse discipline as the paper's
6.5 TiB archive.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional

from repro.core.bootstrap import INCORRECT_OUTCOMES, SignalOutcome, assess_zone
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.ecosystem.world import World, build_world
from repro.reports.table3 import apply_recheck
from repro.scanner.fleet import MachineReport
from repro.scanner.results import ZoneScanResult


@dataclass
class CampaignResult:
    """Everything a campaign produces."""

    world: World
    results: List[ZoneScanResult]
    report: AnalysisReport
    rechecked: Dict[str, SignalOutcome]
    # Set for store-backed campaigns; ``results`` is then empty — the
    # records live in the store and stream back via StoreReader.
    store_dir: Optional[Path] = None
    # Set for parallel campaigns: one entry per worker process, with
    # that machine's zone/query counts and simulated clock.
    machines: Optional[List["MachineReport"]] = None

    @property
    def simulated_duration(self) -> float:
        """Seconds of simulated wall-clock the scan consumed (rate
        limits included) — the analogue of the paper's month-long scan.

        For a parallel campaign this is the slowest machine's clock (the
        fleet model of App. D); otherwise the shared world clock."""
        if self.machines:
            return max(machine.duration for machine in self.machines)
        return self.world.network.clock.now()


def _scan_list(world: World, use_sources: bool):
    if use_sources:
        from repro.scanner.sources import compile_scan_list

        return compile_scan_list(world).names
    return world.scan_list


def _recheck_pass(
    scanner,
    report: AnalysisReport,
    double_check: FrozenSet[str] = frozenset(),
) -> Dict[str, SignalOutcome]:
    """The §4.4 re-check: rescan zones with incorrect signal outcomes.

    *double_check* names zones whose stored result came from a previous
    process (a resumed campaign).  Their first, transiently-failing
    observation was consumed in *that* process's world; the resumed
    world is fresh, so these zones get one extra rescan — the same
    observation budget (initial scan + re-check) every other zone has —
    which keeps a resumed report identical to an uninterrupted one.
    """
    suspicious = [
        assessment.zone
        for assessment in report.assessments
        if assessment.signal_outcome in INCORRECT_OUTCOMES
    ]
    updates: Dict[str, SignalOutcome] = {}
    for zone in suspicious:
        rescan = scanner.scan_zone(zone)
        outcome = assess_zone(rescan).signal_outcome
        if outcome in INCORRECT_OUTCOMES and zone in double_check:
            rescan = scanner.scan_zone(zone)
            outcome = assess_zone(rescan).signal_outcome
        updates[zone] = outcome
    apply_recheck(report, updates)
    return {
        zone: outcome
        for zone, outcome in updates.items()
        if outcome not in INCORRECT_OUTCOMES
    }


def run_campaign(
    scale: float = 1 / 100_000,
    seed: int = 1,
    recheck: bool = True,
    world: Optional[World] = None,
    use_sources: bool = False,
    store_dir: Optional[Path] = None,
    checkpoint_every: Optional[int] = None,
    num_shards: Optional[int] = None,
    compress: bool = True,
    stop_after: Optional[int] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Run one full measurement campaign.

    With ``recheck=True``, zones classified with incorrect signal zones
    are scanned a second time and the report updated with the outcome —
    transient server failures (deSEC's bogus-signature episodes) resolve
    to CORRECT, persistent misconfigurations stay put.

    With ``use_sources=True`` the scan list is *acquired* the way the
    paper acquired it (§3: CZDS dumps, AXFR, private arrangements,
    CT-log sampling) instead of taken from the generator's ground truth
    — CT-log-only ccTLDs are then scanned partially.

    With ``store_dir`` set, every result is persisted to a sharded
    campaign store as it is scanned (checkpointed every
    *checkpoint_every* records) instead of being kept in memory, and
    the report is computed by streaming the store.  ``stop_after``
    aborts the scan after N zones with the store left in-progress —
    the programmatic stand-in for a crash; finish it later with
    :func:`resume_campaign`.

    With ``workers=N`` (N >= 1, requires ``store_dir``) the scan is
    executed by N independent processes, each owning a shard-bucket
    range of the zone list — see :mod:`repro.parallel`.  The resulting
    report is byte-identical to the sequential one at the same
    seed/scale.
    """
    if workers is not None:
        if store_dir is None:
            raise ValueError("workers=N requires a store (store_dir=...)")
        if world is not None:
            raise ValueError(
                "workers=N rebuilds the world per process; pass scale/seed, not world"
            )
        if stop_after is not None:
            raise ValueError("stop_after is not supported with workers=N")
        from repro.parallel import run_parallel_campaign

        return run_parallel_campaign(
            store_dir=Path(store_dir),
            scale=scale,
            seed=seed,
            workers=workers,
            recheck=recheck,
            use_sources=use_sources,
            num_shards=num_shards,
            compress=compress,
            checkpoint_every=checkpoint_every,
        )
    if world is None:
        world = build_world(scale=scale, seed=seed)
    scanner = world.make_scanner()
    scan_list = _scan_list(world, use_sources)

    if store_dir is None:
        if stop_after is not None:
            raise ValueError("stop_after requires a store (store_dir=...)")
        results = scanner.scan_many(scan_list)
        pipeline = AnalysisPipeline(world.operator_db)
        report = pipeline.analyze(results)
        rechecked: Dict[str, SignalOutcome] = {}
        if recheck:
            rechecked = _recheck_pass(scanner, report)
        return CampaignResult(
            world=world, results=results, report=report, rechecked=rechecked
        )

    # -- store-backed campaign: persist-as-you-scan ------------------------
    from repro.store import DEFAULT_CHECKPOINT_EVERY, DEFAULT_NUM_SHARDS, CampaignStore
    from repro.store.reader import StoreReader

    store = CampaignStore.create(
        Path(store_dir),
        seed=world.seed,
        scale=world.scale,
        num_shards=num_shards or DEFAULT_NUM_SHARDS,
        compress=compress,
        zones_total=len(scan_list),
        config={"recheck": recheck, "use_sources": use_sources},
        checkpoint_every=checkpoint_every or DEFAULT_CHECKPOINT_EVERY,
    )
    interrupted = False
    with store:
        for index, _ in enumerate(scanner.scan_iter(scan_list, sink=store.append), 1):
            if stop_after is not None and index >= stop_after:
                interrupted = True
                break
    if interrupted:
        # The context manager checkpointed whatever was buffered; the
        # manifest stays in-progress, exactly like a crash after the
        # last checkpoint.
        reader = StoreReader(store.root)
        report = AnalysisPipeline(world.operator_db).analyze(reader.iter_results())
        return CampaignResult(
            world=world, results=[], report=report, rechecked={}, store_dir=store.root
        )
    store.complete()

    reader = StoreReader(store.root)
    report = reader.reanalyze(world.operator_db)
    rechecked = {}
    if recheck:
        rechecked = _recheck_pass(scanner, report)
    return CampaignResult(
        world=world, results=[], report=report, rechecked=rechecked, store_dir=store.root
    )


def resume_campaign(
    store_dir: Path,
    world: Optional[World] = None,
    checkpoint_every: Optional[int] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Finish an interrupted store-backed campaign.

    Opens the manifest, rebuilds the world at the recorded seed/scale,
    skips every zone already persisted, scans only the remainder
    (checkpointing as it goes), marks the store complete, and produces
    the report by streaming the whole store — byte-identical to the
    report of an uninterrupted campaign at the same seed/scale.

    Campaigns started with ``workers=N`` are resumed in parallel
    automatically (the worker count is recorded in the manifest); pass
    ``workers`` explicitly to repartition the remainder across a
    different number of processes, or to parallelise the remainder of a
    campaign that began sequentially.  Any subset of crashed workers is
    tolerated — completed worker stores are skipped wholesale.
    """
    from repro.store import DEFAULT_CHECKPOINT_EVERY, CampaignStore, StoreError
    from repro.store.manifest import load_manifest

    if workers is not None or load_manifest(Path(store_dir)).config.get("workers"):
        if world is not None:
            raise ValueError(
                "parallel resume rebuilds the world per process; do not pass world"
            )
        from repro.parallel import resume_parallel_campaign

        return resume_parallel_campaign(
            Path(store_dir), workers=workers, checkpoint_every=checkpoint_every
        )

    from repro.store.reader import StoreReader

    store = CampaignStore.open(
        Path(store_dir), checkpoint_every=checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    )
    manifest = store.manifest
    if world is None:
        world = build_world(scale=manifest.scale, seed=manifest.seed)
    elif (world.seed, world.scale) != (manifest.seed, manifest.scale):
        raise StoreError(
            f"world (seed={world.seed}, scale={world.scale:g}) does not match "
            f"the store's campaign (seed={manifest.seed}, scale={manifest.scale:g})"
        )
    scanner = world.make_scanner()
    scan_list = _scan_list(world, bool(manifest.config.get("use_sources")))

    done = frozenset(store.completed_zones())
    if not manifest.complete:
        with store:
            for _ in scanner.scan_iter(scan_list, skip=done, sink=store.append):
                pass
        store.complete()

    reader = StoreReader(store.root)
    report = reader.reanalyze(world.operator_db)
    rechecked: Dict[str, SignalOutcome] = {}
    if manifest.config.get("recheck", True):
        rechecked = _recheck_pass(scanner, report, double_check=done)
    return CampaignResult(
        world=world, results=[], report=report, rechecked=rechecked, store_dir=store.root
    )
