"""End-to-end measurement campaigns: build → scan → analyze → re-check.

This is the one-call orchestration used by the CLI, the examples, and
the benchmark harness.  It mirrors the paper's methodology, including
the re-check pass for zones whose signal errors might be transient
(§4.4: "following further checks, these were transient errors").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.bootstrap import INCORRECT_OUTCOMES, SignalOutcome, assess_zone
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.ecosystem.world import World, build_world
from repro.reports.table3 import apply_recheck
from repro.scanner.results import ZoneScanResult


@dataclass
class CampaignResult:
    """Everything a campaign produces."""

    world: World
    results: List[ZoneScanResult]
    report: AnalysisReport
    rechecked: Dict[str, SignalOutcome]

    @property
    def simulated_duration(self) -> float:
        """Seconds of simulated wall-clock the scan consumed (rate
        limits included) — the analogue of the paper's month-long scan."""
        return self.world.network.clock.now()


def run_campaign(
    scale: float = 1 / 100_000,
    seed: int = 1,
    recheck: bool = True,
    world: Optional[World] = None,
    use_sources: bool = False,
) -> CampaignResult:
    """Run one full measurement campaign.

    With ``recheck=True``, zones classified with incorrect signal zones
    are scanned a second time and the report updated with the outcome —
    transient server failures (deSEC's bogus-signature episodes) resolve
    to CORRECT, persistent misconfigurations stay put.

    With ``use_sources=True`` the scan list is *acquired* the way the
    paper acquired it (§3: CZDS dumps, AXFR, private arrangements,
    CT-log sampling) instead of taken from the generator's ground truth
    — CT-log-only ccTLDs are then scanned partially.
    """
    if world is None:
        world = build_world(scale=scale, seed=seed)
    scanner = world.make_scanner()
    if use_sources:
        from repro.scanner.sources import compile_scan_list

        scan_list = compile_scan_list(world).names
    else:
        scan_list = world.scan_list
    results = scanner.scan_many(scan_list)
    pipeline = AnalysisPipeline(world.operator_db)
    report = pipeline.analyze(results)

    rechecked: Dict[str, SignalOutcome] = {}
    if recheck:
        suspicious = [
            assessment.zone
            for assessment in report.assessments
            if assessment.signal_outcome in INCORRECT_OUTCOMES
        ]
        updates: Dict[str, SignalOutcome] = {}
        for zone in suspicious:
            rescan = scanner.scan_zone(zone)
            outcome = assess_zone(rescan).signal_outcome
            updates[zone] = outcome
        apply_recheck(report, updates)
        rechecked = {
            zone: outcome
            for zone, outcome in updates.items()
            if outcome not in INCORRECT_OUTCOMES
        }
    return CampaignResult(world=world, results=results, report=report, rechecked=rechecked)
