"""Typed agent decisions and the append-only actions ledger.

Every zone the parental agent considers produces exactly one
:class:`AgentAction` — ``secured`` when a DS was provisioned and the
verification re-scan confirmed the full chain, ``rejected`` otherwise,
always carrying a stable machine-readable reason code.  Actions are
persisted to ``<monitor-root>/agent/actions.jsonl``, one sorted-key
JSON object per line with no timestamps, so the ledger is byte-stable
across runs, layouts, and ``PYTHONHASHSEED``.

Crash safety follows the store idiom: appends first truncate a torn
(non-newline-terminated) tail left by a killed process, then write
whole lines and fsync.  Re-runs are idempotent — zones already
recorded for an epoch are skipped, never re-appended.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Set, Tuple

AGENT_DIR = "agent"
ACTIONS_FILENAME = "actions.jsonl"

# Actions.
SECURED = "secured"
REJECTED = "rejected"

# Stable reason codes, one per way a zone can fail RFC 9615 / RFC 8078
# acceptance (plus the accept code).  Ordering of the checks lives in
# :func:`repro.agent.plane.decide`; these strings are the ledger
# contract and must never be renamed.
CHAIN_AUTHENTICATED = "chain_authenticated"
ZONE_WENT_DARK = "zone_went_dark"
DS_ALREADY_PRESENT = "ds_already_present"
NO_SIGNAL = "no_signal"
DELETE_REQUEST = "delete_request"
ALGORITHM_NOT_PERMITTED = "algorithm_not_permitted"
ZONE_UNSIGNED = "zone_unsigned"
ZONE_DNSSEC_INVALID = "zone_dnssec_invalid"
CDS_DISAGREEMENT = "cds_disagreement"
CDS_SIGNATURE_INVALID = "cds_signature_invalid"
SIGNAL_ZONE_CUT = "signal_zone_cut"
SIGNAL_COVERAGE_GAP = "signal_coverage_gap"
UNAUTHENTICATED_CHAIN = "unauthenticated_chain"
SIGNAL_MISMATCH = "signal_mismatch"
NO_ZONE_CDS = "no_zone_cds"
VERIFICATION_FAILED = "verification_failed"

REASON_CODES = frozenset(
    {
        CHAIN_AUTHENTICATED,
        ZONE_WENT_DARK,
        DS_ALREADY_PRESENT,
        NO_SIGNAL,
        DELETE_REQUEST,
        ALGORITHM_NOT_PERMITTED,
        ZONE_UNSIGNED,
        ZONE_DNSSEC_INVALID,
        CDS_DISAGREEMENT,
        CDS_SIGNATURE_INVALID,
        SIGNAL_ZONE_CUT,
        SIGNAL_COVERAGE_GAP,
        UNAUTHENTICATED_CHAIN,
        SIGNAL_MISMATCH,
        NO_ZONE_CDS,
        VERIFICATION_FAILED,
    }
)


class LedgerError(Exception):
    """A ledger line that is not a well-formed AgentAction."""


@dataclass(frozen=True)
class AgentAction:
    """One accept/reject decision, as recorded in the ledger."""

    zone: str  # bare name, matching the monitor event stream
    epoch: int  # the completed epoch whose scan the agent acted on
    action: str  # SECURED | REJECTED
    reason: str  # a REASON_CODES member
    ds: Tuple[str, ...] = ()  # provisioned DS rdatas (secured only)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "action": self.action,
            "epoch": self.epoch,
            "reason": self.reason,
            "zone": self.zone,
        }
        if self.ds:
            out["ds"] = list(self.ds)
        return out

    def to_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "AgentAction":
        try:
            action = cls(
                zone=str(obj["zone"]),
                epoch=int(obj["epoch"]),
                action=str(obj["action"]),
                reason=str(obj["reason"]),
                ds=tuple(str(d) for d in obj.get("ds", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LedgerError(f"malformed ledger entry: {obj!r}") from exc
        if action.action not in (SECURED, REJECTED):
            raise LedgerError(f"unknown action {action.action!r}")
        if action.reason not in REASON_CODES:
            raise LedgerError(f"unknown reason code {action.reason!r}")
        return action


def ledger_path(monitor_root) -> Path:
    """``<monitor-root>/agent/actions.jsonl``."""
    return Path(monitor_root) / AGENT_DIR / ACTIONS_FILENAME


def read_ledger(path) -> List[AgentAction]:
    """All recorded actions, in append order.

    A torn final line (a crash mid-append) is ignored; corruption
    anywhere else raises :class:`LedgerError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    data = path.read_bytes()
    lines = data.split(b"\n")
    torn_tail = lines.pop() if lines else b""
    actions: List[AgentAction] = []
    for index, raw in enumerate(lines):
        if not raw.strip():
            continue
        try:
            actions.append(AgentAction.from_dict(json.loads(raw)))
        except json.JSONDecodeError as exc:
            raise LedgerError(f"{path}:{index + 1}: undecodable ledger line") from exc
    if torn_tail.strip():
        # No trailing newline: the writer died mid-line.  The entry was
        # never durable, so the reader treats it as absent; the next
        # append truncates it.
        pass
    return actions


def append_actions(path, actions: Sequence[AgentAction]) -> None:
    """Durably append *actions*, truncating any torn tail first."""
    if not actions:
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+b") as fh:
        _truncate_torn_tail(fh)
        for action in actions:
            fh.write(action.to_line().encode("utf-8") + b"\n")
        fh.flush()
        os.fsync(fh.fileno())


def _truncate_torn_tail(fh) -> None:
    size = fh.seek(0, os.SEEK_END)
    if size == 0:
        return
    fh.seek(size - 1)
    if fh.read(1) == b"\n":
        return
    # Walk back to the last newline and cut there.
    data = _tail_bytes(fh, size)
    keep = data.rfind(b"\n") + 1 + max(0, size - len(data))
    fh.truncate(keep)
    fh.seek(keep)


def _tail_bytes(fh, size: int, window: int = 1 << 16) -> bytes:
    start = max(0, size - window)
    fh.seek(start)
    return fh.read(size - start)


def recorded_zones(actions: Sequence[AgentAction], epoch: int) -> Set[str]:
    """Zones already decided for *epoch* (idempotent re-run skip set)."""
    return {a.zone for a in actions if a.epoch == epoch}


def secured_pairs(actions: Sequence[AgentAction]) -> List[Tuple[int, str]]:
    """``(epoch, zone)`` install pairs for
    :meth:`repro.monitor.MonitorSpec.with_installs`."""
    return sorted((a.epoch, a.zone) for a in actions if a.action == SECURED)


@dataclass
class AgentRun:
    """The outcome of one :meth:`repro.agent.Agent.run` invocation."""

    epoch: int
    considered: int = 0
    actions: List[AgentAction] = field(default_factory=list)
    skipped: int = 0  # already recorded for this epoch (idempotent re-run)

    @property
    def secured(self) -> List[str]:
        return [a.zone for a in self.actions if a.action == SECURED]

    @property
    def rejected(self) -> List[AgentAction]:
        return [a for a in self.actions if a.action == REJECTED]
