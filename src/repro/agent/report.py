"""Convergence reporting over the agent actions ledger.

Everything here is a pure function of the ledger contents, so the
rendered report inherits the ledger's byte-stability across layouts:
identical ledgers ⇒ identical reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.agent.actions import SECURED, AgentAction
from repro.reports.render import render_table


@dataclass
class ConvergenceReport:
    """How fast the agent drives islands into the chain of trust."""

    epochs: List[int] = field(default_factory=list)  # epochs the agent acted on
    secured_per_epoch: Dict[int, int] = field(default_factory=dict)
    rejections: Counter = field(default_factory=Counter)  # reason → count
    #: zone → epochs-from-first-consideration-to-secured (0 = first try)
    time_to_secure: Dict[str, int] = field(default_factory=dict)
    considered: int = 0
    secured: int = 0

    @property
    def time_to_secure_histogram(self) -> Dict[int, int]:
        hist: Counter = Counter(self.time_to_secure.values())
        return dict(sorted(hist.items()))


def compute_convergence(actions: Sequence[AgentAction]) -> ConvergenceReport:
    """Fold the ledger into the convergence report."""
    report = ConvergenceReport()
    first_seen: Dict[str, int] = {}
    for action in actions:
        report.considered += 1
        first_seen.setdefault(action.zone, action.epoch)
        if action.epoch not in report.secured_per_epoch:
            report.epochs.append(action.epoch)
            report.secured_per_epoch[action.epoch] = 0
        if action.action == SECURED:
            report.secured += 1
            report.secured_per_epoch[action.epoch] += 1
            report.time_to_secure[action.zone] = action.epoch - first_seen[action.zone]
        else:
            report.rejections[action.reason] += 1
    report.epochs.sort()
    return report


def render_convergence(report: ConvergenceReport) -> str:
    """The three tables the tentpole asks for: zones secured per epoch,
    the time-to-secure distribution, and the rejection breakdown."""
    sections = []
    sections.append(
        render_table(
            ["Epoch", "Secured"],
            [[e, report.secured_per_epoch[e]] for e in report.epochs],
            title="Zones secured per epoch",
        )
    )
    hist = report.time_to_secure_histogram
    sections.append(
        render_table(
            ["Epochs to secure", "Zones"],
            [[delay, count] for delay, count in hist.items()] or [["-", 0]],
            title="Time to secure (epochs after first consideration)",
        )
    )
    rejections = sorted(report.rejections.items(), key=lambda kv: (-kv[1], kv[0]))
    sections.append(
        render_table(
            ["Rejection reason", "Zones"],
            rejections or [["-", 0]],
            title="Rejection breakdown",
        )
    )
    summary = (
        f"decisions: {report.considered}  secured: {report.secured}  "
        f"rejected: {report.considered - report.secured}"
    )
    return "\n\n".join(sections + [summary])
