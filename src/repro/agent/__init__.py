"""The RFC 9615 parental agent: the actuator that closes the loop.

Lazy re-exports, matching the other planes —
:mod:`repro.monitor.plane` reads this package's ledger helpers while
:mod:`repro.agent.plane` replays worlds through
:mod:`repro.monitor.timeline`; keeping the ``__init__`` lazy breaks
the cycle.
"""

from typing import TYPE_CHECKING

__all__ = [
    "Agent",
    "AgentAction",
    "AgentConfig",
    "AgentError",
    "AgentRun",
    "ConvergenceReport",
    "compute_convergence",
    "ledger_path",
    "read_ledger",
    "render_convergence",
]

_API = {
    "AgentAction": ("repro.agent.actions", "AgentAction"),
    "AgentRun": ("repro.agent.actions", "AgentRun"),
    "ledger_path": ("repro.agent.actions", "ledger_path"),
    "read_ledger": ("repro.agent.actions", "read_ledger"),
    "Agent": ("repro.agent.plane", "Agent"),
    "AgentConfig": ("repro.agent.plane", "AgentConfig"),
    "AgentError": ("repro.agent.plane", "AgentError"),
    "ConvergenceReport": ("repro.agent.report", "ConvergenceReport"),
    "compute_convergence": ("repro.agent.report", "compute_convergence"),
    "render_convergence": ("repro.agent.report", "render_convergence"),
}

if TYPE_CHECKING:  # pragma: no cover
    from repro.agent.actions import AgentAction, AgentRun, ledger_path, read_ledger
    from repro.agent.plane import Agent, AgentConfig, AgentError
    from repro.agent.report import (
        ConvergenceReport,
        compute_convergence,
        render_convergence,
    )


def __getattr__(name: str):
    try:
        module_name, attr = _API[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(__all__)
