"""The RFC 9615 parental agent: re-authenticate, provision, verify.

The paper measures zones that *signal* readiness for bootstrapping;
the agent closes the loop.  After a monitor epoch completes, it walks
the merged scan verdicts, re-scans every signalling zone against a
fresh replica of that epoch's world, re-derives the full bootstrapping
assessment (signal-zone DNSSEC validation down from the root, CDS
consistency across all NSes, RFC 8078 §3 acceptance rules — the exact
pipeline in :mod:`repro.core.bootstrap`), and provisions DS RRsets
into the synthetic parent zones via :mod:`repro.provisioning.engine`.

Determinism is the load-bearing property.  :func:`decide` is a pure
function of ``(assessment, config)``; candidates are visited in sorted
order; the replica world is rebuilt from the composed
:class:`~repro.monitor.MonitorSpec` exactly the way every campaign
participant rebuilds it.  The ledger an agent-driven chain writes is
therefore byte-identical across serial / ``workers=N`` /
kill-and-resume layouts — the same invariant every other plane pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.agent.actions import (
    ALGORITHM_NOT_PERMITTED,
    CDS_DISAGREEMENT,
    CDS_SIGNATURE_INVALID,
    CHAIN_AUTHENTICATED,
    DELETE_REQUEST,
    DS_ALREADY_PRESENT,
    NO_SIGNAL,
    NO_ZONE_CDS,
    REJECTED,
    SECURED,
    SIGNAL_COVERAGE_GAP,
    SIGNAL_MISMATCH,
    SIGNAL_ZONE_CUT,
    UNAUTHENTICATED_CHAIN,
    VERIFICATION_FAILED,
    ZONE_DNSSEC_INVALID,
    ZONE_UNSIGNED,
    ZONE_WENT_DARK,
    AgentAction,
    AgentRun,
    append_actions,
    ledger_path,
    read_ledger,
    recorded_zones,
    secured_pairs,
)
from repro.core.bootstrap import BootstrapAssessment, SignalOutcome, assess_zone
from repro.core.status import DnssecStatus, classify_status
from repro.dnssec.algorithms import Algorithm, DigestType
from repro.obs.telemetry import as_telemetry


class AgentError(Exception):
    """The agent cannot act (incomplete epoch, broken chain, ...)."""


@dataclass(frozen=True)
class AgentConfig:
    """Acceptance policy knobs.

    Defaults mirror the repo's validator support matrix: an agent never
    provisions a DS it could not itself validate, which is also what
    blocks algorithm-downgrade CDS (e.g. RSASHA1) at the door.
    """

    permitted_algorithms: Tuple[int, ...] = (
        int(Algorithm.RSASHA256),
        int(Algorithm.ECDSAP256SHA256),
        int(Algorithm.ED25519),
    )
    permitted_digest_types: Tuple[int, ...] = (
        int(DigestType.SHA256),
        int(DigestType.SHA384),
    )


def _algorithms_permitted(assessment: BootstrapAssessment, config: AgentConfig) -> bool:
    """Every CDS/CDNSKEY rdata the zone publishes must use a permitted
    algorithm (and digest type, for CDS).  Delete sentinels (algorithm
    0) are handled earlier, by the delete-request rule."""
    cds = assessment.cds
    for rdata in cds.cds_rrset.rdatas if cds.cds_rrset is not None else ():
        if int(rdata.algorithm) not in config.permitted_algorithms:
            return False
        if int(rdata.digest_type) not in config.permitted_digest_types:
            return False
    for rdata in cds.cdnskey_rrset.rdatas if cds.cdnskey_rrset is not None else ():
        if int(rdata.algorithm) not in config.permitted_algorithms:
            return False
    return True


def decide(assessment: BootstrapAssessment, config: AgentConfig) -> Tuple[bool, str]:
    """The pure acceptance function: ``(accept, reason_code)``.

    Checks run in RFC 8078 §3 / RFC 9615 §4 order of precedence, with
    one agent-specific insertion: the algorithm policy is applied as
    soon as the zone's CDS is known well-formed, so a downgrade CDS is
    reported as ``algorithm_not_permitted`` rather than as whichever
    downstream consistency check it would also trip.
    """
    status, cds, signal = assessment.status, assessment.cds, assessment.signal
    if status == DnssecStatus.UNRESOLVED:
        return False, ZONE_WENT_DARK
    if status == DnssecStatus.SECURE:
        return False, DS_ALREADY_PRESENT
    if not signal.any_signal:
        return False, NO_SIGNAL
    if signal.is_delete or (cds.present and cds.is_delete):
        return False, DELETE_REQUEST
    if not _algorithms_permitted(assessment, config):
        return False, ALGORITHM_NOT_PERMITTED
    if status == DnssecStatus.UNSIGNED:
        return False, ZONE_UNSIGNED
    if status == DnssecStatus.INVALID:
        return False, ZONE_DNSSEC_INVALID
    if not cds.present:
        return False, NO_ZONE_CDS
    if not cds.consistent or not signal.consistent:
        return False, CDS_DISAGREEMENT
    if cds.sigs_valid is False or cds.matches_dnskey is False:
        return False, CDS_SIGNATURE_INVALID
    if not signal.no_zone_cuts:
        return False, SIGNAL_ZONE_CUT
    if not signal.covered_all_ns:
        return False, SIGNAL_COVERAGE_GAP
    if not signal.secure_and_valid:
        return False, UNAUTHENTICATED_CHAIN
    if signal.matches_zone_cds is False:
        return False, SIGNAL_MISMATCH
    if assessment.signal_outcome != SignalOutcome.CORRECT:
        # Remaining failure modes (island not internally valid, ...).
        return False, ZONE_DNSSEC_INVALID
    return True, CHAIN_AUTHENTICATED


@dataclass
class Agent:
    """A parental agent bound to an acceptance policy.

    ``agent.run(monitor)`` acts on the monitor's newest completed
    epoch: every zone the merged analysis shows publishing signal
    records is re-scanned in a fresh replica of that epoch's world,
    decided by :func:`decide`, and — on accept — provisioned through
    ``install_ds`` and verified by an immediate re-scan (RFC 8078 §3:
    a DS that does not produce a SECURE chain is rolled back, never
    left broken).  Every decision is appended to the monitor root's
    ``agent/actions.jsonl`` ledger; verified installs also land in the
    replay ledger (:meth:`MonitorSpec.with_installs`) so the next delta
    epoch re-scans them and confirms island → secured.
    """

    config: AgentConfig = field(default_factory=AgentConfig)

    def run(self, monitor, epoch: Optional[int] = None, telemetry=None) -> AgentRun:
        """Act on *epoch* (default: newest complete) of *monitor*."""
        hub = as_telemetry(telemetry)
        completed = monitor.completed_epochs()
        if not completed:
            raise AgentError("monitor has no completed epoch to act on")
        if epoch is None:
            epoch = completed[-1]
        if epoch not in completed:
            raise AgentError(f"epoch {epoch} is not complete")

        path = ledger_path(monitor.root)
        ledger = read_ledger(path)
        already = recorded_zones(ledger, epoch)

        candidates = sorted(
            zone
            for zone, verdict in monitor.classifications(epoch=epoch).items()
            if verdict.outcome != SignalOutcome.NO_SIGNAL
        )
        run = AgentRun(epoch=epoch)

        config = monitor.config
        spec = config.monitor.with_installs(secured_pairs(ledger))
        from repro.monitor.timeline import world_at_epoch

        world, _ = world_at_epoch(config.scale, config.seed, spec, epoch)
        world.network.enable_response_cache()
        hub.bind_clock(world.network.clock)
        scanner = world.make_scanner(telemetry=hub)

        with hub.span("agent_epoch", epoch=epoch):
            for dotted in candidates:
                zone = dotted.rstrip(".")
                if zone in already:
                    run.skipped += 1
                    continue
                run.considered += 1
                hub.count("agent.considered")
                run.actions.append(self._act(world, scanner, zone, epoch, hub))
        append_actions(path, run.actions)
        for action in run.actions:
            hub.count(f"agent.reason.{action.reason}")
        hub.count("agent.secured", len(run.secured))
        hub.count("agent.rejected", len(run.rejected))
        hub.count("agent.epochs_acted")
        return run

    def _act(self, world, scanner, zone: str, epoch: int, hub) -> AgentAction:
        """Decide one zone; provision + verify on accept."""
        from repro.provisioning.engine import install_ds, remove_ds

        hub.count("agent.rescans")
        assessment = assess_zone(scanner.scan_zone(zone))
        accept, reason = decide(assessment, self.config)
        if not accept:
            return AgentAction(zone=zone, epoch=epoch, action=REJECTED, reason=reason)
        cds_rrset = assessment.cds.cds_rrset
        if cds_rrset is None:
            # Accept with CDNSKEY only — nothing to hand install_ds.
            return AgentAction(zone=zone, epoch=epoch, action=REJECTED, reason=NO_ZONE_CDS)
        install_ds(world, zone, cds_rrset)
        hub.count("agent.rescans")
        status, _ = classify_status(scanner.scan_zone(zone))
        if status != DnssecStatus.SECURE:
            # RFC 8078 §3: never leave a broken delegation behind.
            remove_ds(world, zone)
            hub.count("agent.rollbacks")
            return AgentAction(
                zone=zone, epoch=epoch, action=REJECTED, reason=VERIFICATION_FAILED
            )
        ds = tuple(
            sorted(
                f"{r.key_tag} {int(r.algorithm)} {int(r.digest_type)} {r.digest.hex()}"
                for r in cds_rrset.rdatas
                if int(r.algorithm) != int(Algorithm.DELETE)
            )
        )
        return AgentAction(
            zone=zone, epoch=epoch, action=SECURED, reason=CHAIN_AUTHENTICATED, ds=ds
        )
