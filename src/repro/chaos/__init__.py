"""Deterministic chaos plane (``repro.chaos``).

Seeded, simulated-clock-driven fault injection for measurement
campaigns, plus the retry/backoff policy that absorbs it:

* :class:`ChaosConfig` — the frozen fault model (i.i.d. packet loss,
  per-NS brownout windows, SERVFAIL bursts, added latency, truncation
  storms, flaky TCP) with lossless manifest round-trip;
* :class:`ChaosPlane` — the per-network injector, installed on
  :class:`repro.server.network.SimulatedNetwork` via ``network.chaos``;
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter, budgeted against the simulated clock, wired into the scanner
  and iterative-resolver query paths.

The headline invariant (enforced by ``tests/test_chaos.py``): a chaotic
campaign with retries enabled converges to the same classification
report as a fault-free campaign at the same seed and scale — sequential
or parallel — and residual failures are counted, never silently
dropped.  See :mod:`repro.chaos.plane` for why this is a theorem, not a
probability.
"""

from repro.chaos.config import ChaosConfig
from repro.chaos.plane import ChaosPlane, FaultDecision
from repro.chaos.retry import RetryPolicy, derive_seed, stable_unit

__all__ = [
    "ChaosConfig",
    "ChaosPlane",
    "FaultDecision",
    "RetryPolicy",
    "derive_seed",
    "stable_unit",
]
