"""Retry policy: capped exponential backoff on the simulated clock.

The paper's scan had to contend with 7.6 M domains whose nameservers
timed out or errored on CDS/CDNSKEY queries, plus deSEC's transient
SERVFAILs during the measurement window (§4.4).  ZDNS-style measurement
fidelity at scale hinges on a principled retry/timeout policy: a single
attempt turns every transient fault into a misclassification, unbounded
retries turn every dead server into an infinite stall.

:class:`RetryPolicy` sits between the two: a frozen description of a
capped exponential backoff schedule with *deterministic* jitter.  The
jitter for attempt *n* of query key *k* is a pure hash of
``(seed, k, n)`` — no global PRNG state — so schedules are reproducible
per query, independent across keys, and independent across the
``(seed, bucket)`` worker streams of a parallel campaign
(:meth:`RetryPolicy.derive`).  All waiting advances the *simulated*
clock, and the total simulated wait per query never exceeds
:attr:`budget`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from hashlib import blake2b
from typing import Any, Dict, List, Optional


def stable_unit(*parts: object) -> float:
    """A deterministic uniform in ``[0, 1)`` from the given parts.

    Hash-based (BLAKE2b), so the value is a pure function of the parts —
    stable across processes, platforms, and ``PYTHONHASHSEED``.
    """
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    digest = blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def derive_seed(seed: int, *parts: object) -> int:
    """A child stream seed from ``(seed, *parts)`` (pure, collision-safe
    for practical purposes — 64-bit BLAKE2b)."""
    payload = "\x1f".join(str(part) for part in (seed, *parts)).encode("utf-8")
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``attempts`` is the *total* number of tries (initial + retries).
    Before retry *n* (1-based) the caller waits::

        min(cap, base * multiplier ** (n - 1)) * (1 - jitter * u)

    simulated seconds, where ``u = stable_unit(seed, key, n)``; waits
    stop (and the query is abandoned) once the accumulated wait would
    exceed ``budget``.  ``retry_servfail`` additionally retries SERVFAIL
    responses, not just timeouts — the §4.4 transient-failure model.
    """

    attempts: int = 4
    base: float = 0.25
    multiplier: float = 2.0
    cap: float = 5.0
    budget: float = 15.0
    jitter: float = 0.5
    retry_servfail: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base < 0 or self.cap < 0 or self.budget < 0:
            raise ValueError("base, cap, and budget must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    # -- construction ------------------------------------------------------

    @classmethod
    def default(cls) -> "RetryPolicy":
        """The chaos-campaign default (4 attempts, exponential backoff)."""
        return cls()

    @classmethod
    def legacy(cls, retries: int = 1) -> "RetryPolicy":
        """The historical scanner behaviour: ``retries`` immediate
        re-attempts after a timeout, no backoff, no SERVFAIL retry.

        This is the policy every scanner gets when none is configured,
        so pre-chaos campaigns keep their exact query counts and
        simulated durations.
        """
        return cls(
            attempts=retries + 1,
            base=0.0,
            cap=0.0,
            jitter=0.0,
            retry_servfail=False,
        )

    @classmethod
    def from_spec(cls, spec: str) -> Optional["RetryPolicy"]:
        """Parse a CLI ``--retries`` value.

        ``off``/``none`` → ``None``; ``default`` → :meth:`default`; a
        bare integer → default policy with that many attempts; otherwise
        a comma-separated ``field=value`` list over the dataclass fields
        (``attempts=5,base=0.5,budget=20``).
        """
        text = spec.strip().lower()
        if text in ("off", "none", ""):
            return None
        if text == "default":
            return cls.default()
        if text.isdigit():
            return replace(cls.default(), attempts=int(text))
        return replace(cls.default(), **_parse_fields(cls, spec))

    def derive(self, *parts: object) -> "RetryPolicy":
        """The same policy on an independent jitter stream — parallel
        workers derive theirs from ``(seed, bucket)``."""
        return replace(self, seed=derive_seed(self.seed, "retry", *parts))

    # -- the schedule ------------------------------------------------------

    def backoff(self, attempt: int, key: str, waited: float) -> Optional[float]:
        """Simulated seconds to wait before retry *attempt* (1-based), or
        ``None`` when the per-query ``budget`` would be exceeded."""
        if attempt < 1 or attempt >= self.attempts:
            return None
        raw = min(self.cap, self.base * self.multiplier ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 - self.jitter * stable_unit(self.seed, key, attempt)
        if waited + raw > self.budget:
            return None
        return raw

    def schedule(self, key: str) -> List[float]:
        """The full backoff schedule for one query key — every wait the
        retry loop would take if all attempts failed."""
        waits: List[float] = []
        waited = 0.0
        for attempt in range(1, self.attempts):
            wait = self.backoff(attempt, key, waited)
            if wait is None:
                break
            waits.append(wait)
            waited += wait
        return waits

    # -- manifest round-trip -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless dict form for the store manifest (non-defaults only)."""
        return _non_default_fields(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RetryPolicy":
        return cls(**data)


def _parse_fields(cls, spec: str) -> Dict[str, Any]:
    """Parse ``field=value,field=value`` against a dataclass's fields."""
    from dataclasses import fields as dc_fields

    known = {f.name: f.type for f in dc_fields(cls)}
    out: Dict[str, Any] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"expected field=value, got {part!r}")
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in known:
            raise ValueError(
                f"unknown {cls.__name__} field {name!r} (one of: {', '.join(sorted(known))})"
            )
        text = value.strip()
        annotation = str(known[name])
        if "bool" in annotation:
            out[name] = text.lower() in ("1", "true", "yes", "on")
        elif "int" in annotation:
            out[name] = int(text)
        else:
            out[name] = float(text)
    return out


def _non_default_fields(instance) -> Dict[str, Any]:
    """Dataclass → dict keeping only fields that differ from the default
    (minimal, byte-stable manifest entries, like ``manifest_config``)."""
    from dataclasses import fields as dc_fields

    out: Dict[str, Any] = {}
    for f in dc_fields(instance):
        value = getattr(instance, f.name)
        if value != f.default:
            out[f.name] = value
    return out
