"""The fault-injection plane threaded through :class:`SimulatedNetwork`.

For every outgoing query the network asks the plane for a
:class:`FaultDecision`.  Decisions are a pure function of the chaos
seed, the query key ``(ip, qname, qtype)``, and how many times that key
has been asked — **not** of global interleaving — so the faults one
zone's scan experiences do not depend on which zones were scanned
before it or on which worker scans it.  That per-key stream discipline
is what lets a parallel chaotic campaign and a sequential one converge
to the same report: each worker's decisions for its shard buckets are
the same decisions the sequential run makes for those queries.

The plane also enforces the fairness bound
(:attr:`ChaosConfig.max_consecutive`): once a key has absorbed that
many consecutive faults, the next exchange passes through untouched and
the streak resets.  Combined with a retry policy whose attempt count
exceeds the bound, convergence under chaos is a theorem — the
differential suite in ``tests/test_chaos.py`` holds it up against every
fault kind at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.chaos.config import ChaosConfig
from repro.chaos.retry import stable_unit

# Fault kinds, in injection-precedence order (first match wins among the
# mutually-exclusive response faults; latency composes with any of them).
FAULT_BROWNOUT = "brownout"
FAULT_LOSS = "loss"
FAULT_TCP_LOSS = "tcp_loss"
FAULT_SERVFAIL = "servfail"
FAULT_TRUNCATION = "truncation"
FAULT_LATENCY = "latency"


@dataclass
class FaultDecision:
    """What the plane does to one query exchange."""

    kind: Optional[str] = None  # the response fault, if any
    drop: bool = False  # swallow the datagram (NetworkTimeout)
    servfail: bool = False  # answer SERVFAIL instead of the server
    truncate: bool = False  # answer with TC=1 (forces TCP fallback)
    latency: float = 0.0  # extra simulated seconds, composable

    @property
    def faulted(self) -> bool:
        return self.kind is not None


#: The shared no-fault decision (the common case under the fairness cap).
CLEAN = FaultDecision()

_Key = Tuple[str, bytes, int]


class ChaosPlane:
    """Composable, seeded fault injection over one simulated network."""

    def __init__(self, config: ChaosConfig, clock):
        self.config = config
        self.clock = clock
        # Per-key occurrence counter: the index into that key's fault
        # stream.  Keys are (ip, canonical qname, qtype) — deliberately
        # excluding UDP/TCP so a truncation fault and the flaky-TCP
        # fault that follows it share one fairness streak.
        self._occurrences: Dict[_Key, int] = {}
        self._streak: Dict[_Key, int] = {}
        # Accounting (plain ints; telemetry snapshots them at the end).
        self.decisions = 0
        self.suppressed = 0  # faults withheld by the fairness bound
        self.faults: Dict[str, int] = {}

    # -- the decision ------------------------------------------------------

    def decide(self, ip: str, qname_key: bytes, qtype: int, tcp: bool) -> FaultDecision:
        """The plane's verdict for one exchange (see module docs)."""
        config = self.config
        self.decisions += 1
        key = (ip, qname_key, qtype)
        n = self._occurrences.get(key, 0)
        self._occurrences[key] = n + 1

        latency = 0.0
        if config.latency:
            u = stable_unit(config.seed, FAULT_LATENCY, key, n)
            if u < 0.5:
                # Half of all queries see added latency, mean 2×latency
                # on the affected half (overall mean = config.latency).
                latency = config.latency * 4.0 * u
                self.faults[FAULT_LATENCY] = self.faults.get(FAULT_LATENCY, 0) + 1

        kind = self._response_fault(key, n, ip, tcp)
        if kind is None:
            self._streak[key] = 0
            if latency:
                return FaultDecision(latency=latency)
            return CLEAN

        self._streak[key] = self._streak.get(key, 0) + 1
        self.faults[kind] = self.faults.get(kind, 0) + 1
        return FaultDecision(
            kind=kind,
            drop=kind in (FAULT_BROWNOUT, FAULT_LOSS, FAULT_TCP_LOSS),
            servfail=kind == FAULT_SERVFAIL,
            truncate=kind == FAULT_TRUNCATION,
            latency=latency,
        )

    def _response_fault(self, key: _Key, n: int, ip: str, tcp: bool) -> Optional[str]:
        config = self.config
        if config.max_consecutive and self._streak.get(key, 0) >= config.max_consecutive:
            # Fairness bound: this key has absorbed its streak; let the
            # exchange through so retries provably converge.
            self.suppressed += 1
            return None
        if self._in_brownout(ip):
            return FAULT_BROWNOUT
        if tcp:
            if config.tcp_loss and stable_unit(config.seed, FAULT_TCP_LOSS, key, n) < config.tcp_loss:
                return FAULT_TCP_LOSS
            # SERVFAIL bursts hit TCP too; truncation is UDP-only.
            if config.servfail and stable_unit(config.seed, FAULT_SERVFAIL, key, n) < config.servfail:
                return FAULT_SERVFAIL
            return None
        if config.loss and stable_unit(config.seed, FAULT_LOSS, key, n) < config.loss:
            return FAULT_LOSS
        if config.servfail and stable_unit(config.seed, FAULT_SERVFAIL, key, n) < config.servfail:
            return FAULT_SERVFAIL
        if config.truncation and stable_unit(config.seed, FAULT_TRUNCATION, key, n) < config.truncation:
            return FAULT_TRUNCATION
        return None

    def _in_brownout(self, ip: str) -> bool:
        """Clock-driven per-address outage windows.

        Affected addresses (a seeded ``brownout_fraction`` subset) go
        dark for ``brownout_duration`` seconds out of every
        ``brownout_period``, with a per-address phase so outages are
        staggered rather than synchronised.
        """
        config = self.config
        if not (config.brownout_period and config.brownout_duration and config.brownout_fraction):
            return False
        if stable_unit(config.seed, "brownout-select", ip) >= config.brownout_fraction:
            return False
        phase = stable_unit(config.seed, "brownout-phase", ip) * config.brownout_period
        return (self.clock.now() + phase) % config.brownout_period < config.brownout_duration

    # -- accounting --------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Counter snapshot in telemetry key space."""
        out: Dict[str, float] = {
            "chaos.decisions": self.decisions,
            "chaos.suppressed": self.suppressed,
        }
        for kind, count in self.faults.items():
            out[f"chaos.faults.{kind}"] = count
        return out

    def __repr__(self) -> str:
        injected = sum(self.faults.values())
        return f"<ChaosPlane decisions={self.decisions} faults={injected}>"
