"""The fault model: which faults, how often, how bounded.

:class:`ChaosConfig` is the frozen, manifest-serialisable description of
one chaos campaign's fault intensities.  The taxonomy maps directly to
the failure modes the paper's scan contended with:

=================  ====================================================
``loss``           i.i.d. UDP packet loss (queries silently dropped)
``tcp_loss``       flaky TCP — the RFC 7766 fallback path itself fails
``servfail``       SERVFAIL bursts (deSEC's §4.4 transient episodes)
``truncation``     truncation storms: TC=1 answers forcing TCP retries
``latency``        added per-query latency on the simulated clock
``brownout_*``     per-NS outage windows — an address goes dark for
                   ``brownout_duration`` s every ``brownout_period`` s
=================  ====================================================

``max_consecutive`` is the **fairness bound** that makes the
differential invariant a theorem instead of a probability: the plane
never injects more than this many consecutive faults for any one query
key ``(ip, qname, qtype)``.  With a retry policy whose ``attempts``
exceeds the bound, every chaotic query therefore converges to the same
answer the fault-free network gives — residual failures can only come
from servers that are *really* dead.  Set it to ``0`` to lift the bound
(total-loss tests do).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.chaos.retry import _non_default_fields, _parse_fields, derive_seed

# Default intensities for `--chaos default`: every fault kind active at
# rates aggressive enough to fire thousands of times in a small
# campaign, yet bounded by the fairness cap so retries always converge.
_DEFAULT_INTENSITIES = dict(
    loss=0.08,
    tcp_loss=0.05,
    servfail=0.05,
    truncation=0.03,
    latency=0.02,
    brownout_period=120.0,
    brownout_duration=10.0,
    brownout_fraction=0.2,
)


@dataclass(frozen=True)
class ChaosConfig:
    """Fault intensities for one campaign (all probabilities per query)."""

    loss: float = 0.0
    tcp_loss: float = 0.0
    servfail: float = 0.0
    truncation: float = 0.0
    latency: float = 0.0  # mean added seconds per affected query
    brownout_period: float = 0.0  # 0 disables brownouts
    brownout_duration: float = 0.0
    brownout_fraction: float = 0.0  # fraction of addresses subject to them
    max_consecutive: int = 2  # fairness bound; 0 = unbounded
    seed: int = 0

    def __post_init__(self):
        for name in ("loss", "tcp_loss", "servfail", "truncation", "brownout_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.brownout_period < 0 or self.brownout_duration < 0:
            raise ValueError("brownout period/duration must be non-negative")
        if self.brownout_duration > self.brownout_period > 0:
            raise ValueError("brownout_duration cannot exceed brownout_period")
        if self.max_consecutive < 0:
            raise ValueError("max_consecutive must be >= 0 (0 = unbounded)")

    # -- construction ------------------------------------------------------

    @classmethod
    def default(cls, seed: int = 0) -> "ChaosConfig":
        """Every fault kind on at moderate intensity (see module docs)."""
        return cls(seed=seed, **_DEFAULT_INTENSITIES)

    @classmethod
    def from_spec(cls, spec: str) -> Optional["ChaosConfig"]:
        """Parse a CLI ``--chaos`` value.

        ``off``/``none`` → ``None``; ``default`` → :meth:`default`;
        otherwise ``field=value`` pairs over the dataclass fields,
        applied on top of an all-zero config (``loss=0.1,servfail=0.05``).
        """
        text = spec.strip().lower()
        if text in ("off", "none", ""):
            return None
        if text == "default":
            return cls.default()
        return cls(**_parse_fields(cls, spec))

    def derive(self, *parts: object) -> "ChaosConfig":
        """The same fault model on an independent fault stream — parallel
        workers derive theirs from ``(seed, bucket)``."""
        return replace(self, seed=derive_seed(self.seed, "chaos", *parts))

    # -- predicates --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when any fault kind has a non-zero intensity."""
        return bool(
            self.loss
            or self.tcp_loss
            or self.servfail
            or self.truncation
            or self.latency
            or (self.brownout_period and self.brownout_duration and self.brownout_fraction)
        )

    # -- manifest round-trip -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless dict form for the store manifest (non-defaults only)."""
        return _non_default_fields(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosConfig":
        return cls(**data)
