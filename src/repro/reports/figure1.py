"""Figure 1: breakdown of DNSSEC status and bootstrapping possibility."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bootstrap import BootstrapEligibility
from repro.core.pipeline import AnalysisReport
from repro.core.status import DnssecStatus
from repro.ecosystem.world import expected_classification
from repro.reports.render import format_count, format_pct, render_table


@dataclass
class Figure1Data:
    """The Figure 1 boxes (counts of resolved zones)."""

    total: int = 0
    unsigned: int = 0
    with_dnssec: int = 0
    already_secured: int = 0
    invalid_dnssec: int = 0
    islands: int = 0
    island_without_cds: int = 0
    island_invalid_cds: int = 0
    island_cds_delete: int = 0
    possible_to_bootstrap: int = 0


_ELIGIBILITY_FIELDS = {
    BootstrapEligibility.UNSIGNED: "unsigned",
    BootstrapEligibility.ALREADY_SECURED: "already_secured",
    BootstrapEligibility.INVALID_DNSSEC: "invalid_dnssec",
    BootstrapEligibility.ISLAND_NO_CDS: "island_without_cds",
    BootstrapEligibility.ISLAND_CDS_INVALID: "island_invalid_cds",
    BootstrapEligibility.ISLAND_CDS_DELETE: "island_cds_delete",
    BootstrapEligibility.BOOTSTRAPPABLE: "possible_to_bootstrap",
}


def compute_figure1(report: AnalysisReport) -> Figure1Data:
    data = Figure1Data()
    for eligibility, field in _ELIGIBILITY_FIELDS.items():
        setattr(data, field, report.eligibility_count(eligibility))
    data.total = report.total_resolved
    data.islands = report.status_count(DnssecStatus.ISLAND)
    data.with_dnssec = data.already_secured + data.invalid_dnssec + data.islands
    return data


def expected_figure1(targets) -> Figure1Data:
    data = Figure1Data()
    for cell in targets.cells:
        status, eligibility, _ = expected_classification(cell)
        if status == DnssecStatus.UNRESOLVED:
            continue
        data.total += cell.count
        if status == DnssecStatus.ISLAND:
            data.islands += cell.count
        field = _ELIGIBILITY_FIELDS.get(eligibility)
        if field:
            setattr(data, field, getattr(data, field) + cell.count)
    data.with_dnssec = data.already_secured + data.invalid_dnssec + data.islands
    return data


def render_figure1(data: Figure1Data, expected: Optional[Figure1Data] = None) -> str:
    def body(data: Figure1Data):
        rows = [
            ["Scanned (resolved)", format_count(data.total), ""],
            ["Without DNSSEC", format_count(data.unsigned), format_pct(data.unsigned, data.total)],
            ["With DNSSEC", format_count(data.with_dnssec), format_pct(data.with_dnssec, data.total)],
            ["  Already secured", format_count(data.already_secured), format_pct(data.already_secured, data.total)],
            ["  Invalid DNSSEC", format_count(data.invalid_dnssec), format_pct(data.invalid_dnssec, data.total)],
            ["  Secure islands", format_count(data.islands), format_pct(data.islands, data.total)],
            ["    without CDS", format_count(data.island_without_cds), format_pct(data.island_without_cds, data.total)],
            ["    invalid CDS", format_count(data.island_invalid_cds), format_pct(data.island_invalid_cds, data.total)],
            ["    CDS delete", format_count(data.island_cds_delete), format_pct(data.island_cds_delete, data.total)],
            ["    possible to bootstrap", format_count(data.possible_to_bootstrap), format_pct(data.possible_to_bootstrap, data.total)],
        ]
        return rows

    out = render_table(
        ["", "Zones", "%"],
        body(data),
        title="Figure 1: DNSSEC status and bootstrapping possibility",
    )
    if expected is not None:
        out += "\n\n" + render_table(
            ["", "Zones", "%"], body(expected), title="Figure 1 (paper targets, scaled)"
        )
    return out
