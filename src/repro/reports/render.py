"""Plain-text table rendering helpers."""

from __future__ import annotations

from typing import List, Sequence


def format_count(value: int) -> str:
    """Thousands-separated integers, paper style (space separator)."""
    return f"{value:,}".replace(",", " ")


def format_duration(seconds: float) -> str:
    """Compact duration: ``950ms``, ``12.3s``, ``4m05s``, ``3h02m``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def format_pct(numerator: int, denominator: int) -> str:
    if denominator == 0:
        return "-"
    pct = 100.0 * numerator / denominator
    if pct >= 10:
        return f"{pct:.1f}"
    if pct >= 0.1:
        return f"{pct:.2f}".rstrip("0").rstrip(".")
    return f"{pct:.3f}".rstrip("0").rstrip(".") if pct else "0"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_left: Sequence[int] = (0,),
) -> str:
    """Render an ASCII table; column 0 (and *align_left*) left-aligned,
    the rest right-aligned."""
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if i in align_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
