"""Table 1: DNSSEC status amongst the top-20 DNS operators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.pipeline import AnalysisReport
from repro.ecosystem.paper_targets import TABLE1
from repro.ecosystem.spec import StatusScenario
from repro.reports.render import format_count, format_pct, render_table


@dataclass
class Table1Row:
    operator: str
    domains: int
    unsigned: int
    secured: int
    invalid: int
    islands: int


def compute_table1(report: AnalysisReport, limit: int = 20) -> List[Table1Row]:
    """The measured Table 1 rows, ordered by portfolio size."""
    rows = []
    for name in report.top_operators(limit):
        stats = report.operators[name]
        rows.append(
            Table1Row(
                operator=name,
                domains=stats.domains,
                unsigned=stats.unsigned,
                secured=stats.secured,
                invalid=stats.invalid,
                islands=stats.islands,
            )
        )
    return rows


def expected_table1(targets, limit: int = 20) -> List[Table1Row]:
    """Table 1 as the scaled cell population predicts it."""
    by_op: Dict[str, Table1Row] = {}
    status_field = {
        StatusScenario.UNSIGNED: "unsigned",
        StatusScenario.SECURE: "secured",
        StatusScenario.INVALID_ERRANT_DS: "invalid",
        StatusScenario.INVALID_BADSIG: "invalid",
        StatusScenario.ISLAND: "islands",
        StatusScenario.ISLAND_BADSIG: "islands",
    }
    from repro.ecosystem.world import attributed_operator

    for cell in targets.cells:
        field = status_field.get(cell.status)
        if field is None:
            continue
        operator = attributed_operator(cell)
        row = by_op.setdefault(operator, Table1Row(operator, 0, 0, 0, 0, 0))
        row.domains += cell.count
        setattr(row, field, getattr(row, field) + cell.count)
    ordered = sorted(by_op.values(), key=lambda r: (-r.domains, r.operator))
    return [row for row in ordered if row.operator != "unknown"][:limit]


def render_table1(
    rows: List[Table1Row], expected: Optional[List[Table1Row]] = None
) -> str:
    headers = [
        "Operator",
        "Domains",
        "Unsigned",
        "%",
        "Secured",
        "%",
        "Invalid",
        "%",
        "Islands",
        "%",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.operator,
                format_count(row.domains),
                format_count(row.unsigned),
                format_pct(row.unsigned, row.domains),
                format_count(row.secured),
                format_pct(row.secured, row.domains),
                format_count(row.invalid),
                format_pct(row.invalid, row.domains),
                format_count(row.islands),
                format_pct(row.islands, row.domains),
            ]
        )
    out = render_table(headers, body, title="Table 1: DNSSEC amongst the top 20 DNS operators")
    if expected is not None:
        exp_body = []
        for row in expected:
            exp_body.append(
                [
                    row.operator,
                    format_count(row.domains),
                    format_count(row.unsigned),
                    format_pct(row.unsigned, row.domains),
                    format_count(row.secured),
                    format_pct(row.secured, row.domains),
                    format_count(row.invalid),
                    format_pct(row.invalid, row.domains),
                    format_count(row.islands),
                    format_pct(row.islands, row.domains),
                ]
            )
        out += "\n\n" + render_table(
            headers, exp_body, title="Table 1 (paper targets, scaled)"
        )
    return out


def paper_table1_percentages() -> Dict[str, Dict[str, float]]:
    """The published per-operator percentages (for shape checks)."""
    out: Dict[str, Dict[str, float]] = {}
    for name, (unsigned, secured, invalid, islands) in TABLE1.items():
        domains = unsigned + secured + invalid + islands
        out[name] = {
            "unsigned": 100.0 * unsigned / domains,
            "secured": 100.0 * secured / domains,
            "invalid": 100.0 * invalid / domains,
            "islands": 100.0 * islands / domains,
        }
    return out
