"""Per-TLD adoption report (§6: the financial-incentive effect).

The paper's conclusion highlights that registries paying operators to
deploy DNSSEC (.ch/.li: 1 CHF/year, .se: 10 SEK, .eu: 0.12 EUR) see a
concentration of CDS-publishing operators.  This report breaks the
measured deployment down per public suffix so the effect is visible:
the incentivised TLDs host disproportionately many secured and
CDS-publishing zones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.pipeline import AnalysisReport
from repro.core.status import DnssecStatus
from repro.dns.name import Name
from repro.ecosystem import psl
from repro.reports.render import format_count, format_pct, render_table


@dataclass
class TldRow:
    suffix: str
    domains: int = 0
    secured: int = 0
    with_cds: int = 0

    @property
    def secured_pct(self) -> float:
        return 100.0 * self.secured / self.domains if self.domains else 0.0

    @property
    def cds_pct(self) -> float:
        return 100.0 * self.with_cds / self.domains if self.domains else 0.0


def compute_tld_report(report: AnalysisReport) -> List[TldRow]:
    """Adoption per public suffix, largest first."""
    rows: Dict[str, TldRow] = {}
    for assessment in report.assessments:
        if assessment.status == DnssecStatus.UNRESOLVED:
            continue
        try:
            _, suffix = psl.registrable_part(Name.from_text(assessment.zone))
        except ValueError:
            continue
        row = rows.setdefault(suffix, TldRow(suffix))
        row.domains += 1
        if assessment.status == DnssecStatus.SECURE:
            row.secured += 1
        if assessment.cds.present:
            row.with_cds += 1
    # Ties break on the suffix so the table is identical regardless of
    # assessment order (serial vs. merged parallel shards).
    return sorted(rows.values(), key=lambda r: (-r.domains, r.suffix))


def render_tld_report(rows: List[TldRow]) -> str:
    body = [
        [
            row.suffix,
            format_count(row.domains),
            format_count(row.secured),
            format_pct(row.secured, row.domains),
            format_count(row.with_cds),
            format_pct(row.with_cds, row.domains),
        ]
        for row in rows
    ]
    return render_table(
        ["TLD", "Domains", "Secured", "%", "w/ CDS", "%"],
        body,
        title="Per-TLD DNSSEC adoption (§6 incentive effect)",
    )
