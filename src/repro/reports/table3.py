"""Table 3: DNS operators publishing CDS RRs in RFC 9615 signal zones."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.bootstrap import CANNOT_OUTCOMES, INCORRECT_OUTCOMES, SignalOutcome
from repro.core.pipeline import AnalysisReport, SignalFunnel
from repro.ecosystem.spec import SignalScenario
from repro.ecosystem.world import expected_classification
from repro.reports.render import format_count, render_table

AB_COLUMNS = ("Cloudflare", "deSEC", "Glauca")
ROWS = (
    ("with_signal", "Domains with signal CDS"),
    ("already_secured", "  already secured"),
    ("cannot", "  cannot be bootstrapped"),
    ("cannot_delete", "    deletion request"),
    ("cannot_invalid", "    invalid DNSSEC"),
    ("potential", "  potential to bootstrap"),
    ("incorrect", "    signal zone incorrect"),
    ("correct", "    signal zone correct"),
)


@dataclass
class Table3Data:
    """The funnel per column (Cloudflare / deSEC / Glauca / Others / Total)."""

    columns: Dict[str, SignalFunnel] = field(default_factory=dict)

    def total(self, row: str) -> int:
        return sum(getattr(funnel, row) for funnel in self.columns.values())


def _column_for(operator: str) -> str:
    return operator if operator in AB_COLUMNS else "Others"


def compute_table3(report: AnalysisReport) -> Table3Data:
    data = Table3Data(columns={name: SignalFunnel() for name in (*AB_COLUMNS, "Others")})
    for operator, counter in report.outcome_by_operator.items():
        column = data.columns[_column_for(operator)]
        for outcome, count in counter.items():
            for _ in range(count):
                column.observe(outcome)
    return data


def expected_table3(targets, after_recheck: bool = True) -> Table3Data:
    data = Table3Data(columns={name: SignalFunnel() for name in (*AB_COLUMNS, "Others")})
    for cell in targets.cells:
        if cell.signal == SignalScenario.NONE:
            continue
        _, _, outcome = expected_classification(cell, after_recheck=after_recheck)
        column = data.columns[_column_for(cell.operator)]
        for _ in range(cell.count):
            column.observe(outcome)
    return data


def apply_recheck(
    report: AnalysisReport, rescan_outcomes: Dict[str, SignalOutcome]
) -> None:
    """Fold re-scan outcomes into the report (the paper re-checked zones
    whose signal errors looked transient; see §4.4)."""
    for assessment in report.assessments:
        new_outcome = rescan_outcomes.get(assessment.zone)
        if new_outcome is None or new_outcome == assessment.signal_outcome:
            continue
        operator = report.signal_operators.get(
            assessment.zone, report.attributions[assessment.zone].primary
        )
        old = assessment.signal_outcome
        assessment.signal_outcome = new_outcome
        report.outcome_counts[old] -= 1
        report.outcome_counts[new_outcome] += 1
        by_op = report.outcome_by_operator.setdefault(operator, type(report.outcome_counts)())
        by_op[old] -= 1
        by_op[new_outcome] += 1
        funnel = report.signal_funnels[operator]
        _unobserve(funnel, old)
        funnel.observe(new_outcome)


def _unobserve(funnel: SignalFunnel, outcome: SignalOutcome) -> None:
    if outcome == SignalOutcome.NO_SIGNAL:
        return
    funnel.with_signal -= 1
    if outcome == SignalOutcome.ALREADY_SECURED:
        funnel.already_secured -= 1
    elif outcome in CANNOT_OUTCOMES:
        funnel.cannot -= 1
        if outcome == SignalOutcome.CANNOT_DELETE_REQUEST:
            funnel.cannot_delete -= 1
        else:
            funnel.cannot_invalid -= 1
    else:
        funnel.potential -= 1
        if outcome in INCORRECT_OUTCOMES:
            funnel.incorrect -= 1
        else:
            funnel.correct -= 1


def render_table3(data: Table3Data, expected: Optional[Table3Data] = None) -> str:
    headers = ["", *AB_COLUMNS, "Others", "Total"]

    def body(data: Table3Data) -> List[List[str]]:
        rows = []
        for attr, label in ROWS:
            row = [label]
            for column in (*AB_COLUMNS, "Others"):
                row.append(format_count(getattr(data.columns[column], attr)))
            row.append(format_count(data.total(attr)))
            rows.append(row)
        return rows

    out = render_table(
        headers,
        body(data),
        title="Table 3: DNS operators publishing CDS RRs in signal zones",
    )
    if expected is not None:
        out += "\n\n" + render_table(
            headers, body(expected), title="Table 3 (paper targets, scaled)"
        )
    return out
