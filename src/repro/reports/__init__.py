"""Report generation: regenerate the paper's Tables 1–3 and Figure 1
from an :class:`~repro.core.pipeline.AnalysisReport`, side by side with
the scaled paper expectations, plus shape checks."""

from repro.reports.render import format_count, format_pct, render_table
from repro.reports.table1 import compute_table1, render_table1
from repro.reports.table2 import compute_table2, render_table2
from repro.reports.table3 import compute_table3, render_table3
from repro.reports.figure1 import compute_figure1, render_figure1
from repro.reports.table_security import compute_security, render_security
from repro.reports.tld import compute_tld_report, render_tld_report
from repro.reports.compare import ShapeCheck, check_shapes

__all__ = [
    "ShapeCheck",
    "check_shapes",
    "compute_dashboard",
    "compute_figure1",
    "compute_security",
    "compute_table1",
    "compute_table2",
    "compute_table3",
    "compute_tld_report",
    "render_tld_report",
    "format_count",
    "format_pct",
    "render_figure1",
    "render_security",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "zone_status_dashboard",
]


def __getattr__(name):
    # The dashboard sits on top of repro.query; importing it lazily
    # keeps `repro.reports` free of the store/query layers for callers
    # that only render tables.
    if name in ("compute_dashboard", "zone_status_dashboard"):
        from importlib import import_module

        return getattr(import_module("repro.reports.dashboard"), name)
    raise AttributeError(f"module 'repro.reports' has no attribute {name!r}")
