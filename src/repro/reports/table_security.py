"""Bootstrap security table: what a conformant parental agent rejects.

The paper's tables count what operators *publish*; this table counts
what an RFC 9615 / RFC 8078 parental agent would *do about it*.  Every
signal-publishing zone in a campaign is run through the pure acceptance
function :func:`repro.agent.plane.decide` (no DS is installed — the
table is a dry run) and bucketed per signal operator by the stable
reason code.  Adversarial operators therefore show up as columns whose
entire population lands on one rejection row — the quantified claim
that the verification pipeline defeats that attack shape.

Like every other report, the computation only reads the
:class:`~repro.core.pipeline.AnalysisReport`, so serial, parallel and
resumed campaigns render byte-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.bootstrap import SignalOutcome
from repro.core.pipeline import AnalysisReport
from repro.reports.render import format_count, render_table

#: Rows in :func:`repro.agent.plane.decide` precedence order, accepted
#: first.  ``no_signal`` is absent by construction (the table covers
#: signal publishers only) and ``verification_failed`` is a
#: post-provision outcome the pure function never returns.
ROWS = (
    ("chain_authenticated", "Accepted: chain authenticated"),
    ("zone_went_dark", "Rejected: zone went dark"),
    ("ds_already_present", "Rejected: DS already present"),
    ("delete_request", "Rejected: deletion request"),
    ("algorithm_not_permitted", "Rejected: algorithm not permitted"),
    ("zone_unsigned", "Rejected: zone unsigned"),
    ("zone_dnssec_invalid", "Rejected: zone DNSSEC invalid"),
    ("cds_disagreement", "Rejected: CDS disagreement"),
    ("cds_signature_invalid", "Rejected: CDS signature invalid"),
    ("signal_zone_cut", "Rejected: zone cut in signal name"),
    ("signal_coverage_gap", "Rejected: signal coverage gap"),
    ("unauthenticated_chain", "Rejected: unauthenticated chain"),
    ("signal_mismatch", "Rejected: signal/zone CDS mismatch"),
    ("no_zone_cds", "Rejected: no CDS in zone"),
)


@dataclass
class SecurityTableData:
    """Per-operator reason-code counts for all signal-publishing zones."""

    # operator -> reason code -> count
    columns: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def operators(self) -> List[str]:
        return sorted(self.columns)

    def count(self, operator: str, reason: str) -> int:
        return self.columns.get(operator, {}).get(reason, 0)

    def total(self, reason: str) -> int:
        return sum(column.get(reason, 0) for column in self.columns.values())


def compute_security(report: AnalysisReport) -> SecurityTableData:
    """Dry-run the agent's acceptance function over *report*.

    Zones without any signal are out of scope (an agent never considers
    them); everything else gets exactly one reason code.
    """
    # Lazy import: rendering Tables 1-3 must not pull in the agent plane.
    from repro.agent.plane import AgentConfig, decide

    config = AgentConfig()
    data = SecurityTableData()
    for assessment in report.assessments:
        if assessment.signal_outcome == SignalOutcome.NO_SIGNAL:
            continue
        _, reason = decide(assessment, config)
        operator = report.signal_operators.get(assessment.zone, "unknown")
        column = data.columns.setdefault(operator, {})
        column[reason] = column.get(reason, 0) + 1
    return data


def render_security(data: SecurityTableData) -> str:
    operators = data.operators
    headers = ["", *operators, "Total"]
    rows: List[List[str]] = []
    for reason, label in ROWS:
        row = [label]
        for operator in operators:
            row.append(format_count(data.count(operator, reason)))
        row.append(format_count(data.total(reason)))
        rows.append(row)
    considered = sum(data.total(reason) for reason, _ in ROWS)
    rows.append(
        [
            "Signals considered",
            *(
                format_count(sum(data.columns[op].values()))
                for op in operators
            ),
            format_count(considered),
        ]
    )
    return render_table(
        headers,
        rows,
        title="Bootstrap security: parental-agent decisions per signal operator",
    )
