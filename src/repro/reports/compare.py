"""Shape checks: does the regenerated evaluation tell the paper's story?

We do not require the absolute counts to match (the substrate is a
simulator and the population is scaled); we require the *shape* — who
wins, by roughly what factor, where the taxonomy mass sits — to hold.
Each check returns a :class:`ShapeCheck` with a pass/fail and detail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bootstrap import BootstrapEligibility
from repro.core.pipeline import AnalysisReport
from repro.core.status import DnssecStatus
from repro.reports.table3 import AB_COLUMNS, Table3Data


@dataclass
class ShapeCheck:
    name: str
    passed: bool
    detail: str
    # Provenance: which paper table the assertion guards and, for
    # monitored campaigns, which epoch produced the numbers — so a
    # failing check in a delta chain names the diverging artefact
    # instead of just "some shape broke".
    table: str = ""
    epoch: Optional[int] = None

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        line = f"[{marker}] {self.name}: {self.detail}"
        provenance = [p for p in (self.table, None if self.epoch is None else f"epoch {self.epoch}") if p]
        if provenance:
            line += f" ({', '.join(provenance)})"
        return line


# Which paper artefact each shape assertion guards (see the paper's
# Tables 1-3): status distribution, per-operator CDS publishing, and
# the authenticated-bootstrapping funnel respectively.
_TABLE_FOR_CHECK = {
    "dnssec-rare": "table1",
    "secured-about-5-percent": "table1",
    "invalid-under-half-percent": "table1",
    "godaddy-biggest-operator": "table2",
    "google-dominates-cds": "table2",
    "cloudflare-delete-islands": "table2",
    "inconsistency-is-multi-operator": "table2",
    "three-ab-operators": "table3",
    "cloudflare-dominates-ab": "table3",
    "ab-implemented-correctly": "table3",
    "ab-deployment-space-small": "table3",
    "signal-rrs-not-cleaned-up": "table3",
}


def _pct(numerator: int, denominator: int) -> float:
    return 100.0 * numerator / denominator if denominator else 0.0


def check_shapes(
    report: AnalysisReport,
    table3: Table3Data,
    targets=None,
    epoch: Optional[int] = None,
) -> List[ShapeCheck]:
    """Run every shape assertion the paper's narrative rests on.

    When *targets* (the world's scaled PaperTargets) is given, checks
    that are distorted by rare-case preservation at small scales fall
    back to exact comparison against the scaled expectation.  *epoch*
    stamps every check with the simulated week it measured (the
    monitoring plane passes it), so failures name the diverging
    epoch/table pair.
    """
    checks: List[ShapeCheck] = []
    resolved = report.total_resolved
    expected3 = None
    if targets is not None:
        from repro.reports.table3 import expected_table3

        expected3 = expected_table3(targets, after_recheck=True)

    unsigned_pct = _pct(report.status_count(DnssecStatus.UNSIGNED), resolved)
    checks.append(
        ShapeCheck(
            "dnssec-rare",
            90 <= unsigned_pct <= 96,
            f"unsigned = {unsigned_pct:.1f} % (paper: 93.2 %)",
        )
    )
    secure_pct = _pct(report.status_count(DnssecStatus.SECURE), resolved)
    checks.append(
        ShapeCheck(
            "secured-about-5-percent",
            4 <= secure_pct <= 7,
            f"secured = {secure_pct:.1f} % (paper: 5.5 %)",
        )
    )
    invalid_pct = _pct(report.status_count(DnssecStatus.INVALID), resolved)
    checks.append(
        ShapeCheck(
            "invalid-under-half-percent",
            invalid_pct < 0.5,
            f"invalid = {invalid_pct:.2f} % (paper: 0.2 %)",
        )
    )

    top = report.top_operators(3)
    checks.append(
        ShapeCheck(
            "godaddy-biggest-operator",
            bool(top) and top[0] == "GoDaddy",
            f"top operators: {top}",
        )
    )

    cds_top = report.top_cds_operators(3)
    checks.append(
        ShapeCheck(
            "google-dominates-cds",
            bool(cds_top) and cds_top[0] == "Google Domains",
            f"top CDS publishers: {cds_top}",
        )
    )

    # AB is implemented by exactly three operators at scale.
    ab_with_signal = {
        name: table3.columns[name].with_signal for name in AB_COLUMNS
    }
    checks.append(
        ShapeCheck(
            "three-ab-operators",
            all(count > 0 for count in ab_with_signal.values()),
            f"signal populations: {ab_with_signal}",
        )
    )
    cf = table3.columns["Cloudflare"].with_signal
    others = sum(f.with_signal for name, f in table3.columns.items() if name != "Cloudflare")
    # At paper scale the factor is ~155x; rare-case preservation caps it
    # at small scales, so require a decisive 5x.
    checks.append(
        ShapeCheck(
            "cloudflare-dominates-ab",
            cf > 5 * max(1, others),
            f"Cloudflare signal zones = {cf}, everyone else = {others} "
            "(paper: 1.23 M vs ~7.9 k)",
        )
    )

    potential = table3.total("potential")
    correct = table3.total("correct")
    ratio_ok = potential > 0 and correct / potential >= 0.98
    if not ratio_ok and expected3 is not None:
        # The incorrect cells are preserved-at-1 rarities; as long as the
        # measured funnel equals the scaled expectation, the paper-scale
        # ratio (99.9 %) holds by construction.
        ratio_ok = (
            correct == expected3.total("correct")
            and table3.total("incorrect") == expected3.total("incorrect")
        )
    checks.append(
        ShapeCheck(
            "ab-implemented-correctly",
            ratio_ok,
            f"correct/potential = {correct}/{potential} "
            "(paper: 99.9 %; small scales keep every rare misconfiguration)",
        )
    )

    bootstrappable = report.eligibility_count(BootstrapEligibility.BOOTSTRAPPABLE)
    boot_pct = _pct(bootstrappable, resolved)
    checks.append(
        ShapeCheck(
            "ab-deployment-space-small",
            boot_pct < 0.5,
            f"bootstrappable = {boot_pct:.2f} % of zones (paper: ~0.1 %)",
        )
    )

    with_signal = table3.total("with_signal")
    secured_share = _pct(table3.total("already_secured"), with_signal)
    checks.append(
        ShapeCheck(
            "signal-rrs-not-cleaned-up",
            50 <= secured_share <= 80,
            f"{secured_share:.0f} % of signal zones are already secured "
            "(operators flout the RFC 9615 cleanup recommendation; paper: 65 %)",
        )
    )

    delete_islands = report.cds_delete_island
    cf_delete = report.cds_delete_island_by_operator.get("Cloudflare", 0)
    checks.append(
        ShapeCheck(
            "cloudflare-delete-islands",
            delete_islands == 0 or cf_delete / delete_islands >= 0.75,
            f"Cloudflare holds {cf_delete}/{delete_islands} delete-request islands "
            "(paper: 96.7 %)",
        )
    )

    inconsistent = report.islands_cds_inconsistent
    multi = report.islands_cds_inconsistent_multi_operator
    checks.append(
        ShapeCheck(
            "inconsistency-is-multi-operator",
            inconsistent == 0 or multi / inconsistent >= 0.5,
            f"{multi}/{inconsistent} inconsistent-CDS islands are multi-operator "
            "(paper: 86.9 %)",
        )
    )
    for check in checks:
        check.table = _TABLE_FOR_CHECK.get(check.name, "")
        check.epoch = epoch
    return checks
