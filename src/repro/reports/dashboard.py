"""The operator dashboard: per-operator portfolio health from an index.

``repro-dnssec query dashboard`` renders, for each operator, its
portfolio size, DNSSEC status split, CDS population, and bootstrappable
count — the live-operations view of the paper's Tables 1–2, answered
from the columnar sidecars of the query snapshot instead of a full
re-analysis.  Reading four small columns makes the dashboard cost
independent of record size (RRsets, signal chains), which is what lets
an operator watch a multi-million-zone campaign's deployment posture
between checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.bootstrap import BootstrapEligibility
from repro.core.operators import UNKNOWN_OPERATOR
from repro.core.status import DnssecStatus
from repro.query.snapshot import FLAG_HAS_CDS
from repro.reports.render import format_count, format_pct, render_table


@dataclass
class OperatorRow:
    """One operator's dashboard accumulators."""

    domains: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    with_cds: int = 0
    bootstrappable: int = 0

    def status(self, name: str) -> int:
        return self.by_status.get(name, 0)


def compute_dashboard(service) -> Dict[str, OperatorRow]:
    """Cross-tab the snapshot's operator/status/eligibility/flags
    columns into per-operator rows (*service* is a
    :class:`~repro.query.QueryService`)."""
    rows: Dict[str, OperatorRow] = {}
    bootstrappable = BootstrapEligibility.BOOTSTRAPPABLE.value
    for view in service.iter_status():
        row = rows.setdefault(view.operator, OperatorRow())
        row.domains += 1
        row.by_status[view.status] = row.by_status.get(view.status, 0) + 1
        if view.flags & FLAG_HAS_CDS:
            row.with_cds += 1
        if view.eligibility == bootstrappable:
            row.bootstrappable += 1
    return rows


def zone_status_dashboard(service, limit: int = 20) -> str:
    """Render the per-operator deployment dashboard as plain text."""
    rows = compute_dashboard(service)
    named = [(name, row) for name, row in rows.items() if name != UNKNOWN_OPERATOR]
    named.sort(key=lambda item: (-item[1].domains, item[0]))
    shown = named[:limit]

    unsigned = DnssecStatus.UNSIGNED.value
    secure = DnssecStatus.SECURE.value
    island = DnssecStatus.ISLAND.value
    invalid = DnssecStatus.INVALID.value

    table_rows: List[List[str]] = []
    for name, row in shown:
        table_rows.append(
            [
                name,
                format_count(row.domains),
                format_count(row.status(unsigned)),
                format_count(row.status(secure)),
                format_count(row.status(island)),
                format_count(row.status(invalid)),
                format_count(row.with_cds),
                format_count(row.bootstrappable),
                format_pct(row.bootstrappable, row.domains),
            ]
        )
    unknown = rows.get(UNKNOWN_OPERATOR)
    if unknown is not None:
        table_rows.append(
            [
                UNKNOWN_OPERATOR,
                format_count(unknown.domains),
                format_count(unknown.status(unsigned)),
                format_count(unknown.status(secure)),
                format_count(unknown.status(island)),
                format_count(unknown.status(invalid)),
                format_count(unknown.with_cds),
                format_count(unknown.bootstrappable),
                format_pct(unknown.bootstrappable, unknown.domains),
            ]
        )

    total = sum(row.domains for row in rows.values())
    total_boot = sum(row.bootstrappable for row in rows.values())
    header = [
        f"operator dashboard: {service.root}",
        f"zones:     {format_count(total)} indexed, "
        f"{format_count(total_boot)} bootstrappable "
        f"({format_pct(total_boot, total)}%)",
        "",
    ]
    table = render_table(
        [
            "operator",
            "domains",
            "unsigned",
            "secure",
            "island",
            "invalid",
            "CDS",
            "bootstr.",
            "%",
        ],
        table_rows,
    )
    return "\n".join(header) + table
