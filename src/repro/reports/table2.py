"""Table 2: the top-20 DNS operators publishing CDS RRs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.pipeline import AnalysisReport
from repro.ecosystem.spec import CdsScenario
from repro.reports.render import format_count, format_pct, render_table


@dataclass
class Table2Row:
    operator: str
    with_cds: int
    domains: int

    @property
    def pct(self) -> float:
        return 100.0 * self.with_cds / self.domains if self.domains else 0.0


def compute_table2(report: AnalysisReport, limit: int = 20) -> List[Table2Row]:
    rows = []
    for name in report.top_cds_operators(limit):
        stats = report.operators[name]
        rows.append(Table2Row(operator=name, with_cds=stats.with_cds, domains=stats.domains))
    return rows


def expected_table2(targets, limit: int = 20) -> List[Table2Row]:
    from repro.ecosystem.world import attributed_operator

    by_op: Dict[str, Table2Row] = {}
    for cell in targets.cells:
        operator = attributed_operator(cell)
        row = by_op.setdefault(operator, Table2Row(operator, 0, 0))
        row.domains += cell.count
        if cell.cds not in (CdsScenario.NONE,):
            row.with_cds += cell.count
    ordered = sorted(
        (row for row in by_op.values() if row.with_cds and row.operator != "unknown"),
        key=lambda r: (-r.with_cds, r.operator),
    )
    return ordered[:limit]


def render_table2(rows: List[Table2Row], expected: Optional[List[Table2Row]] = None) -> str:
    headers = ["#", "DNS Operator", "Dom. w. CDS", "%"]

    def body(rows: List[Table2Row]) -> List[List[str]]:
        return [
            [
                str(i + 1),
                row.operator,
                format_count(row.with_cds),
                format_pct(row.with_cds, row.domains),
            ]
            for i, row in enumerate(rows)
        ]

    out = render_table(
        headers,
        body(rows),
        title="Table 2: top DNS operators publishing CDS RRs",
        align_left=(1,),
    )
    if expected is not None:
        out += "\n\n" + render_table(
            headers,
            body(expected),
            title="Table 2 (paper targets, scaled)",
            align_left=(1,),
        )
    return out
