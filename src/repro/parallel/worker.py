"""The worker half of the parallel campaign engine.

A worker process is a *scan machine* in the paper's sense (App. D): it
rebuilds the same deterministic world from ``(seed, scale)``, claims the
zones whose shard bucket falls in its assigned range, scans them with
its own simulated clock and rate limiter
(:func:`repro.scanner.fleet.make_machine_scanner`), and commits results
into its own checkpointed :class:`~repro.store.CampaignStore` under the
campaign root.  All communication with the parent is through the
filesystem: the worker's store manifest carries the durable scan state
and a small ``worker.json`` carries per-machine statistics — so a
crashed worker leaves exactly its last checkpoint behind and any subset
of workers can be re-run by :func:`repro.parallel.resume_parallel_campaign`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.chaos import ChaosConfig, RetryPolicy
from repro.monitor.spec import MonitorSpec
from repro.scenarios.spec import ScenarioSpec
from repro.obs.events import events_path
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.store.checkpoint import DEFAULT_CHECKPOINT_EVERY, CampaignStore
from repro.store.manifest import load_manifest, manifest_path
from repro.store.shards import StoreError

from repro.parallel.partition import stored_zones_for_buckets, zones_for_buckets

# Exit code of a fault-injected "crash" (tests kill workers this way).
EXIT_SIMULATED_CRASH = 99

WORKER_STATS_FILENAME = "worker.json"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker needs — picklable, so it survives spawn."""

    index: int
    seed: int
    scale: float
    num_shards: int
    buckets: Tuple[int, ...]
    store_dir: str  # this worker's own store directory
    # Existing stores whose persisted zones are already done (the root
    # store and any sibling worker stores); the worker reads only the
    # segments of its own buckets from each.
    skip_roots: Tuple[str, ...] = ()
    compress: bool = True
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    use_sources: bool = False
    # Observability: a plain bool (the hub itself is not picklable-by-
    # contract); the worker builds its own hub bound to its machine
    # clock, streaming into ``<worker store>/events/``.
    telemetry: bool = False
    # Fault injection (repro.chaos): the campaign-level config; each
    # worker derives its own decision stream from (seed, first bucket)
    # so fault patterns are independent across machines yet replayable.
    chaos: Optional[ChaosConfig] = None
    # Scanner/resolver retry policy; None → legacy single-retry.
    retry: Optional[RetryPolicy] = None
    # Concurrent in-flight zones (repro.sched): each worker runs its own
    # event loop over its machine clock; None → legacy serial scan.
    in_flight: Optional[int] = None
    # Fault injection for tests: hard-exit (no checkpoint, no stats)
    # after committing results for this many zones.
    crash_after: Optional[int] = field(default=None)
    # Monitoring plane: when set, the worker replays the seeded event
    # stream to this epoch before scanning, and (for epoch >= 1)
    # narrows its share to the changed-zone subset.  The subset is
    # *recomputed* in-process from the (picklable) monitor spec — the
    # event stream is layout-independent, so no zone lists are shipped.
    epoch: Optional[int] = None
    monitor: Optional[MonitorSpec] = None
    # Scenario plane for *plain* parallel campaigns (epoch campaigns
    # carry it inside the monitor spec); frozen and picklable, so every
    # worker rebuilds the exact same scenario population.
    scenarios: Optional[ScenarioSpec] = None


def worker_stats_path(store_dir: Path) -> Path:
    return Path(store_dir) / WORKER_STATS_FILENAME


def _write_stats(store_dir: Path, stats: Dict[str, Any]) -> None:
    """Atomically publish the worker's machine statistics."""
    path = worker_stats_path(store_dir)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def run_worker(spec: WorkerSpec) -> Dict[str, Any]:
    """Scan this worker's shard partition into its own store.

    Designed to be the ``target`` of a spawned process, but callable
    inline (tests use both).  Returns the machine statistics written to
    ``worker.json``.
    """
    root = Path(spec.store_dir)
    buckets = list(spec.buckets)

    own_manifest = None
    if manifest_path(root).exists():
        own_manifest = load_manifest(root)
        if (own_manifest.seed, own_manifest.scale) != (spec.seed, spec.scale):
            raise StoreError(
                f"worker store {root} belongs to campaign "
                f"(seed={own_manifest.seed}, scale={own_manifest.scale:g}), "
                f"not (seed={spec.seed}, scale={spec.scale:g})"
            )
        if (
            own_manifest.complete
            and own_manifest.num_shards == spec.num_shards
            and own_manifest.config.get("buckets") == buckets
        ):
            # This worker finished in a previous run with the same
            # partition: its store already holds its entire share, so we
            # can skip even the world rebuild.
            stats_file = worker_stats_path(root)
            if stats_file.exists():
                return json.loads(stats_file.read_text(encoding="utf-8"))
            stats = {
                "index": spec.index,
                "buckets": buckets,
                "zones": own_manifest.records,
                "scanned": 0,
                "queries": 0,
                "duration": 0.0,
            }
            _write_stats(root, stats)
            return stats

    # Imported lazily: worlds are heavy and the fast path above avoids them.
    from repro.campaign import _scan_list
    from repro.monitor.timeline import scan_world
    from repro.scanner.fleet import make_machine_scanner

    telemetry = Telemetry() if spec.telemetry else NULL_TELEMETRY
    world, scan_override = scan_world(
        spec.scale, spec.seed, monitor=spec.monitor, epoch=spec.epoch,
        scenarios=spec.scenarios,
    )
    world.network.enable_response_cache()
    if spec.chaos is not None and spec.chaos.enabled:
        # Each machine gets its own decision stream: derived, not
        # shared, so no two workers replay identical fault patterns,
        # yet each stream is a pure function of (campaign seed, bucket).
        world.network.install_chaos(spec.chaos.derive("worker", buckets[0]))
    config = world.scanner_config()
    if spec.retry is not None:
        config = replace(config, retry_policy=spec.retry.derive("worker", buckets[0]))
    if spec.in_flight is not None:
        config = replace(config, in_flight=spec.in_flight)
    scanner, clock = make_machine_scanner(world, config=config, telemetry=telemetry)
    scan_list = (
        scan_override if scan_override is not None else _scan_list(world, spec.use_sources)
    )
    mine = zones_for_buckets(scan_list, spec.num_shards, buckets)

    if own_manifest is None:
        store = CampaignStore.create(
            root,
            seed=spec.seed,
            scale=spec.scale,
            num_shards=spec.num_shards,
            compress=spec.compress,
            zones_total=len(mine),
            config={"worker": spec.index, "buckets": buckets},
            checkpoint_every=spec.checkpoint_every,
            telemetry=telemetry,
        )
    else:
        store = CampaignStore.open(
            root, checkpoint_every=spec.checkpoint_every, telemetry=telemetry
        )
    if telemetry.enabled:
        telemetry.open_sink(events_path(root))

    skip: set[str] = set()
    for skip_root in dict.fromkeys((str(root), *spec.skip_roots)):
        candidate = Path(skip_root)
        if manifest_path(candidate).exists():
            skip |= stored_zones_for_buckets(candidate, buckets)
    remainder = [zone for zone in mine if zone.to_text() not in skip]

    if store.manifest.complete and remainder:
        # A repartitioned resume moved extra buckets into this worker.
        store.reopen_in_progress()

    queries_before = world.network.queries_sent
    scanned = 0
    if remainder:
        with store:
            for _ in scanner.scan_iter(remainder, sink=store.append):
                scanned += 1
                if telemetry.enabled:
                    telemetry.maybe_progress(scanned, len(remainder))
                    if scanned % telemetry.progress_every == 0:
                        # Transient liveness signal for the parent (the
                        # parent polls worker.json): deliberately *not*
                        # part of the persisted event stream, which must
                        # stay timing-independent.
                        _write_stats(
                            root,
                            {
                                "index": spec.index,
                                "heartbeat": True,
                                "buckets": buckets,
                                "zones_done": scanned,
                                "zones_total": len(remainder),
                            },
                        )
                if spec.crash_after is not None and scanned >= spec.crash_after:
                    # Hard exit: skips the context manager's checkpoint,
                    # so buffered-but-uncommitted records are lost —
                    # exactly what a real crash leaves behind.
                    os._exit(EXIT_SIMULATED_CRASH)
    store.complete()

    stats = {
        "index": spec.index,
        "buckets": buckets,
        "zones": len(mine),
        "scanned": scanned,
        "queries": world.network.queries_sent - queries_before,
        "duration": clock.now(),
    }
    if telemetry.enabled:
        telemetry.capture_scanner(scanner)
        telemetry.flush_counters()
        telemetry.close()
    _write_stats(root, stats)
    return stats
