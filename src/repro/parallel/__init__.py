"""Multiprocess shard-partitioned campaign execution.

See :mod:`repro.parallel.engine` for the architecture: workers own
contiguous shard-bucket ranges of the deterministic scan list, commit
into per-worker stores, and the parent merges manifests into one
campaign whose streamed report is byte-identical to a sequential run.
"""

from repro.parallel.engine import (
    ParallelCampaignError,
    merge_worker_manifests,
    resume_parallel_campaign,
    run_parallel_campaign,
    worker_dir,
)
from repro.parallel.partition import (
    bucket_ranges,
    partition_zones,
    stored_zones_for_buckets,
    zones_for_buckets,
)
from repro.parallel.worker import EXIT_SIMULATED_CRASH, WorkerSpec, run_worker

__all__ = [
    "EXIT_SIMULATED_CRASH",
    "ParallelCampaignError",
    "WorkerSpec",
    "bucket_ranges",
    "merge_worker_manifests",
    "partition_zones",
    "resume_parallel_campaign",
    "run_parallel_campaign",
    "run_worker",
    "stored_zones_for_buckets",
    "worker_dir",
    "zones_for_buckets",
]
