"""The parent half of the parallel campaign engine.

``run_parallel_campaign`` turns one measurement campaign into N worker
processes plus a deterministic merge:

1. the parent creates the campaign root store and spawns one process
   per worker, each owning a contiguous range of shard buckets
   (:mod:`repro.parallel.partition`);
2. while the workers scan, the parent rebuilds its own copy of the
   world (needed for the operator database and the §4.4 re-check), so
   the build cost overlaps the scan instead of preceding it;
3. each worker commits checkpointed shard segments into its own store
   under ``<root>/workers/wNN``;
4. the parent merges the worker *manifests* — not the files — into the
   root manifest: every segment keeps its bytes and digest, its path
   simply points into the worker subdirectory, and global sequence
   numbers are reassigned in ``(bucket, origin, sequence)`` order.  The
   merge is therefore a single atomic manifest rewrite, crash-safe by
   the same argument as any other checkpoint, and the merged stream
   order is a pure function of the data — never of worker timing.

Determinism invariant: the streamed analysis of the merged store, and
the report after the re-check pass, are byte-identical (Tables 1–3,
Figure 1) to a sequential run at the same seed and scale.  Aggregates
do not depend on record order, the record *set* is exactly the scan
list, and the re-check gives every transiently-failing zone the same
observation budget a sequential campaign gives it (see
:func:`repro.campaign._recheck_pass`).
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.events import WORKERS_DIR, events_path
from repro.obs.telemetry import NULL_TELEMETRY, as_telemetry
from repro.scanner.fleet import MachineReport
from repro.store.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_NUM_SHARDS,
    CampaignStore,
)
from repro.store.manifest import load_manifest, manifest_path, save_manifest
from repro.store.reader import StoreReader
from repro.store.shards import StoreError

from repro.parallel.partition import bucket_ranges
from repro.parallel.worker import WorkerSpec, run_worker, worker_stats_path

__all__ = [
    "WORKERS_DIR",  # re-exported; defined in repro.obs.events
    "ParallelCampaignError",
    "run_parallel_campaign",
    "resume_parallel_campaign",
]


class ParallelCampaignError(StoreError):
    """One or more workers did not finish; the store remains resumable."""

    def __init__(self, message: str, failed: Dict[int, Optional[int]]):
        super().__init__(message)
        # worker index -> exit code (None if the process died signal-less).
        self.failed = failed


def worker_dir(root: Path, index: int) -> Path:
    return Path(root) / WORKERS_DIR / f"w{index:02d}"


def _existing_worker_roots(root: Path) -> List[Path]:
    """Worker stores already on disk, in deterministic (name) order."""
    base = Path(root) / WORKERS_DIR
    if not base.exists():
        return []
    return sorted(
        child for child in base.iterdir() if manifest_path(child).exists()
    )


def _ensure_children_can_import() -> None:
    """Spawned workers re-import :mod:`repro`; make sure they can.

    The tier-1 invocation (``PYTHONPATH=src pytest``) already covers
    this, but a caller who put ``src`` on ``sys.path`` by hand would
    otherwise spawn workers that die on import.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )


def _spawn_workers(specs: Sequence[WorkerSpec]) -> List[multiprocessing.Process]:
    # spawn (not fork): workers must prove they can rebuild the world
    # from (seed, scale) alone — the property the determinism argument
    # rests on — and must not inherit the parent's interpreter state.
    _ensure_children_can_import()
    context = multiprocessing.get_context("spawn")
    processes = []
    for spec in specs:
        process = context.Process(target=run_worker, args=(spec,), name=f"repro-w{spec.index:02d}")
        process.start()
        processes.append(process)
    return processes


def _join_workers(
    root: Path,
    specs: Sequence[WorkerSpec],
    processes: Sequence[multiprocessing.Process],
    telemetry=NULL_TELEMETRY,
) -> None:
    if telemetry.enabled and telemetry.on_heartbeat is not None:
        _join_with_heartbeats(specs, processes, telemetry)
    failed: Dict[int, Optional[int]] = {}
    for spec, process in zip(specs, processes):
        process.join()
        if process.exitcode != 0:
            failed[spec.index] = process.exitcode
    if failed:
        detail = ", ".join(f"w{index:02d} (exit {code})" for index, code in sorted(failed.items()))
        raise ParallelCampaignError(
            f"{len(failed)}/{len(specs)} workers did not finish: {detail}; "
            f"the store at {root} is resumable with resume_campaign(workers=...)",
            failed,
        )


def _join_with_heartbeats(
    specs: Sequence[WorkerSpec],
    processes: Sequence[multiprocessing.Process],
    telemetry,
    poll_interval: float = 0.25,
) -> None:
    """Surface worker liveness while waiting (live display only).

    Heartbeats go to ``telemetry.on_heartbeat`` and are never recorded:
    what the parent happens to observe depends on process timing, and
    the persisted event stream must stay a pure function of the config.
    """
    pending = {spec.index: process for spec, process in zip(specs, processes)}
    roots = {spec.index: Path(spec.store_dir) for spec in specs}
    last_seen: Dict[int, object] = {}
    while pending:
        for index, process in list(pending.items()):
            process.join(timeout=poll_interval)
            if not process.is_alive():
                del pending[index]
            stats_file = worker_stats_path(roots[index])
            if not stats_file.exists():
                continue
            try:
                stats = json.loads(stats_file.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                continue  # caught mid-replace; the next poll rereads
            key = (stats.get("heartbeat"), stats.get("zones_done"), stats.get("duration"))
            if last_seen.get(index) != key:
                last_seen[index] = key
                telemetry.live(worker=index, **stats)


def merge_worker_manifests(
    store: CampaignStore, worker_roots: Sequence[Path], telemetry=NULL_TELEMETRY
) -> None:
    """Fold completed worker stores into the root manifest and mark the
    campaign complete.

    Segments are referenced in place (paths relative to the root point
    into the worker subdirectories); bytes, record counts, and digests
    are untouched.  Global sequence numbers are reassigned in
    ``(bucket, origin, worker_sequence)`` order — a pure function of the
    stored data, so two runs that scanned the same zones produce the
    same manifest ordering no matter which worker finished first.
    """
    with telemetry.span("manifest_merge") as span:
        entries = []
        # Pre-existing root-owned segments (a sequential store finished in
        # parallel) sort before any worker's segments of the same bucket.
        for info in store.manifest.shards:
            entries.append((info.bucket, "", info.sequence, info))
        for wroot in sorted(worker_roots):
            wmanifest = load_manifest(wroot)
            if not wmanifest.complete:
                raise StoreError(f"worker store {wroot} is still in progress; cannot merge")
            if wmanifest.num_shards != store.manifest.num_shards:
                raise StoreError(
                    f"worker store {wroot} has {wmanifest.num_shards} shards, "
                    f"campaign has {store.manifest.num_shards}"
                )
            origin = wroot.relative_to(store.root).as_posix()
            for info in wmanifest.shards:
                entries.append(
                    (info.bucket, origin, info.sequence, replace(info, path=f"{origin}/{info.path}"))
                )
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        store.manifest.shards = [
            replace(info, sequence=sequence) for sequence, (_, _, _, info) in enumerate(entries)
        ]
        store.complete()
        span["workers"] = len(worker_roots)
        span["segments"] = len(entries)


def _machine_reports(root: Path) -> List[MachineReport]:
    reports: List[MachineReport] = []
    for wroot in _existing_worker_roots(root):
        stats_file = worker_stats_path(wroot)
        if not stats_file.exists():
            continue
        stats = json.loads(stats_file.read_text(encoding="utf-8"))
        if "duration" not in stats:
            # A heartbeat snapshot from a worker that never finished —
            # liveness data, not a machine report.
            continue
        reports.append(
            MachineReport(
                index=stats["index"],
                zones=stats["zones"],
                queries=stats["queries"],
                duration=stats["duration"],
            )
        )
    return reports


def _finish(
    store: CampaignStore,
    world,
    recheck: bool,
    telemetry=NULL_TELEMETRY,
    chaos=None,
    retry=None,
):
    """Stream the merged store through the pipeline and re-check.

    Every stored observation came from a *worker's* world, so every
    suspicious zone gets the resumed-campaign double-check budget — the
    parent's fresh world will replay the transient failure once before
    resolving (see :func:`repro.campaign._recheck_pass`).  A chaotic
    campaign re-checks under chaos too (the parent derives its own
    decision stream), with the same retry policy the workers ran.
    """
    from repro.campaign import CampaignResult, _recheck_pass

    reader = StoreReader(store.root)
    report = reader.reanalyze(world.operator_db)
    rechecked = {}
    if recheck:
        if chaos is not None and chaos.enabled:
            world.network.install_chaos(chaos.derive("recheck"))
        scanner = world.make_scanner(telemetry=telemetry, retry=retry)
        done = frozenset(assessment.zone for assessment in report.assessments)
        rechecked = _recheck_pass(scanner, report, double_check=done, telemetry=telemetry)
        if telemetry.enabled:
            telemetry.capture_scanner(scanner)
    if telemetry.enabled:
        telemetry.flush_counters()
        telemetry.close()
    return CampaignResult(
        world=world,
        results=[],
        report=report,
        rechecked=rechecked,
        store_dir=store.root,
        machines=_machine_reports(store.root),
        telemetry=telemetry if telemetry.enabled else None,
    )


def run_parallel_campaign(
    store_dir: Path,
    scale: float = 1 / 100_000,
    seed: int = 1,
    workers: int = 2,
    recheck: bool = True,
    use_sources: bool = False,
    num_shards: Optional[int] = None,
    compress: bool = True,
    checkpoint_every: Optional[int] = None,
    faults: Optional[Dict[int, int]] = None,
    telemetry=None,
    chaos=None,
    retry=None,
    in_flight: Optional[int] = None,
    manifest_config: Optional[Dict[str, Any]] = None,
    epoch: Optional[int] = None,
    parent_epoch: Optional[int] = None,
    monitor=None,
    scenarios=None,
):
    """Run one campaign across *workers* processes (see module docs).

    With *epoch*/*monitor* set (the monitoring plane), the parent and
    every worker replay the seeded event stream to that simulated week
    and — for epoch >= 1 — scan only the changed-zone subset, which
    each worker recomputes in-process from the picklable monitor spec.

    *faults* is a testing hook: ``{worker_index: crash_after_n_zones}``
    hard-kills the given workers mid-scan, leaving a resumable store.
    *chaos* / *retry* (a :class:`repro.chaos.ChaosConfig` /
    :class:`repro.chaos.RetryPolicy`) switch on fault injection: every
    worker derives its own decision stream from (campaign seed, first
    bucket) and the report still matches the fault-free campaign.
    *manifest_config* overrides the ``config`` dict recorded in the root
    manifest (the :class:`repro.campaign.CampaignConfig` serialization).
    """
    from repro.campaign import _scan_list
    from repro.monitor.timeline import scan_world

    telemetry = as_telemetry(telemetry)
    num_shards = num_shards or DEFAULT_NUM_SHARDS
    checkpoint_every = checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    if epoch is not None and epoch > 0 and parent_epoch is None:
        parent_epoch = epoch - 1  # same default chaining as CampaignConfig
    root = Path(store_dir)
    ranges = bucket_ranges(num_shards, workers)  # validates workers vs shards

    if manifest_config is None:
        manifest_config = {"recheck": recheck, "use_sources": use_sources, "workers": workers}
        if telemetry.enabled:
            manifest_config["telemetry"] = True
        if chaos is not None:
            manifest_config["chaos"] = chaos.to_dict()
        if retry is not None:
            manifest_config["retry"] = retry.to_dict()
        if in_flight is not None:
            manifest_config["in_flight"] = in_flight
        if monitor is not None:
            manifest_config["monitor"] = monitor.to_dict()
        if scenarios is not None:
            manifest_config["scenarios"] = scenarios.to_dict()
    store = CampaignStore.create(
        root,
        seed=seed,
        scale=scale,
        num_shards=num_shards,
        compress=compress,
        config=manifest_config,
        checkpoint_every=checkpoint_every,
        telemetry=telemetry,
        epoch=epoch,
        parent_epoch=parent_epoch,
    )
    if telemetry.enabled:
        telemetry.open_sink(events_path(root))
    specs = [
        WorkerSpec(
            index=index,
            seed=seed,
            scale=scale,
            num_shards=num_shards,
            buckets=tuple(bucket_range),
            store_dir=str(worker_dir(root, index)),
            compress=compress,
            checkpoint_every=checkpoint_every,
            use_sources=use_sources,
            telemetry=telemetry.enabled,
            chaos=chaos,
            retry=retry,
            in_flight=in_flight,
            crash_after=(faults or {}).get(index),
            epoch=epoch,
            monitor=monitor,
            scenarios=scenarios,
        )
        for index, bucket_range in enumerate(ranges)
    ]
    processes = _spawn_workers(specs)

    # Overlap: the parent rebuilds (and, for epochs, replays) its world
    # while the workers scan.
    world, subset = scan_world(scale, seed, monitor=monitor, epoch=epoch, scenarios=scenarios)
    telemetry.bind_clock(world.network.clock)
    store.manifest.zones_total = len(
        subset if subset is not None else _scan_list(world, use_sources)
    )
    save_manifest(root, store.manifest)

    _join_workers(root, specs, processes, telemetry=telemetry)
    merge_worker_manifests(
        store, [Path(spec.store_dir) for spec in specs], telemetry=telemetry
    )
    return _finish(store, world, recheck, telemetry=telemetry, chaos=chaos, retry=retry)


def resume_parallel_campaign(
    store_dir: Path,
    workers: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    telemetry=None,
    store: Optional[CampaignStore] = None,
    chaos=None,
    retry=None,
    in_flight: Optional[int] = None,
):
    """Finish an interrupted parallel campaign (or parallelise the
    remainder of a sequential one).

    Tolerates a crash of any subset of workers: completed worker stores
    are recognised by their manifests and skipped wholesale, crashed
    ones resume from their last checkpoint, and missing ones start
    fresh.  *workers* defaults to the count recorded in the campaign
    manifest; a different count repartitions only the remaining zones
    (every already-stored zone is skipped wherever it lives, so shares
    stay disjoint).
    """
    from repro.campaign import _scan_list
    from repro.monitor.timeline import scan_world

    root = Path(store_dir)
    telemetry = as_telemetry(telemetry)
    checkpoint_every = checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    if store is None:
        # Callers that already opened the store (resume_campaign routing
        # on the manifest) pass it in so it is loaded exactly once.
        store = CampaignStore.open(root, checkpoint_every=checkpoint_every, telemetry=telemetry)
    else:
        store.telemetry = telemetry
    manifest = store.manifest
    if not telemetry.enabled and manifest.config.get("telemetry"):
        # The campaign was started with telemetry on; keep the resumed
        # half observable too so the merged streams stay coherent.
        telemetry = as_telemetry(True)
        store.telemetry = telemetry
    workers = workers or manifest.config.get("workers")
    if not workers:
        raise StoreError(
            f"{root} is not a parallel campaign; pass workers=N to parallelise it"
        )
    recheck = bool(manifest.config.get("recheck", True))
    use_sources = bool(manifest.config.get("use_sources", False))
    # A chaotic campaign resumes chaotic: the fault model and retry
    # policy round-trip through the manifest like every other knob.
    # Explicit *chaos*/*retry* arguments override the recorded model.
    from repro.campaign import CampaignConfig

    stored = CampaignConfig.from_manifest(manifest)
    if chaos is not None or retry is not None or in_flight is not None:
        stored = replace(
            stored,
            chaos=chaos if chaos is not None else stored.chaos,
            retry=retry if retry is not None else stored.retry,
            in_flight=in_flight if in_flight is not None else stored.in_flight,
        )
    chaos = stored.chaos
    retry = stored.effective_retry()
    in_flight = stored.in_flight

    if telemetry.enabled:
        telemetry.open_sink(events_path(root))

    if manifest.complete:
        world, _ = scan_world(
            manifest.scale, manifest.seed, monitor=stored.monitor, epoch=stored.epoch,
            scenarios=stored.scenarios,
        )
        telemetry.bind_clock(world.network.clock)
        return _finish(store, world, recheck, telemetry=telemetry, chaos=chaos, retry=retry)

    ranges = bucket_ranges(manifest.num_shards, workers)
    skip_roots = tuple(
        str(path)
        for path in ([root] if manifest.shards else []) + _existing_worker_roots(root)
    )
    specs = [
        WorkerSpec(
            index=index,
            seed=manifest.seed,
            scale=manifest.scale,
            num_shards=manifest.num_shards,
            buckets=tuple(bucket_range),
            store_dir=str(worker_dir(root, index)),
            skip_roots=skip_roots,
            compress=manifest.compress,
            checkpoint_every=checkpoint_every,
            use_sources=use_sources,
            telemetry=telemetry.enabled,
            chaos=chaos,
            retry=retry,
            in_flight=in_flight,
            epoch=stored.epoch,
            monitor=stored.monitor,
            scenarios=stored.scenarios,
        )
        for index, bucket_range in enumerate(ranges)
    ]
    # A resume with a different worker count can strand worker stores of
    # the old partition: nobody reopens them, but their committed zones
    # are in every new worker's skip-set.  Seal them (orphan sweep +
    # complete) so the merge can reference their segments.
    owned = {Path(spec.store_dir) for spec in specs}
    for wroot in _existing_worker_roots(root):
        if wroot not in owned and not load_manifest(wroot).complete:
            CampaignStore.open(wroot, checkpoint_every=checkpoint_every).complete()

    processes = _spawn_workers(specs)
    world, subset = scan_world(
        manifest.scale, manifest.seed, monitor=stored.monitor, epoch=stored.epoch,
        scenarios=stored.scenarios,
    )
    telemetry.bind_clock(world.network.clock)
    _join_workers(root, specs, processes, telemetry=telemetry)

    manifest.config["workers"] = workers
    if manifest.zones_total is None:
        manifest.zones_total = len(
            subset if subset is not None else _scan_list(world, use_sources)
        )
    # Merge every worker store on disk — including leftovers from an
    # earlier run with a different worker count.
    merge_worker_manifests(store, _existing_worker_roots(root), telemetry=telemetry)
    return _finish(store, world, recheck, telemetry=telemetry, chaos=chaos, retry=retry)
