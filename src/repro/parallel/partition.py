"""Shard-range partitioning of campaign work across worker processes.

The campaign store already routes every record to a bucket by
``SHA-256(zone) % num_shards`` (:func:`repro.store.shards.shard_for_zone`)
— a partition key that is stable across processes, platforms, and
Python versions.  The parallel engine reuses it as the *work* partition:
each worker owns a contiguous range of buckets and scans exactly the
zones whose hash falls in its range.  Because the key is a pure function
of the zone name, every worker can rebuild the same deterministic world
from ``(seed, scale)`` and compute its own share without any
coordination, and the shares are disjoint and complete by construction.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Set

from repro.dns.name import Name
from repro.scanner.serialize import open_results_read
from repro.store.manifest import load_manifest
from repro.store.shards import ShardCorruption, shard_for_zone


def bucket_ranges(num_shards: int, workers: int) -> List[range]:
    """Contiguous, near-even bucket ranges covering ``0..num_shards-1``.

    The first ``num_shards % workers`` workers get one extra bucket.
    Raises :class:`ValueError` when there are more workers than buckets —
    a worker with no buckets would idle while pretending to help.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers > num_shards:
        raise ValueError(
            f"workers ({workers}) cannot exceed num_shards ({num_shards}); "
            f"create the store with more shards"
        )
    base, extra = divmod(num_shards, workers)
    ranges: List[range] = []
    start = 0
    for index in range(workers):
        width = base + (1 if index < extra else 0)
        ranges.append(range(start, start + width))
        start += width
    return ranges


def zones_for_buckets(
    zones: Iterable[Name], num_shards: int, buckets: Iterable[int]
) -> List[Name]:
    """The sub-list of *zones* whose shard bucket falls in *buckets*,
    preserving scan-list order."""
    wanted: Set[int] = set(buckets)
    return [
        zone
        for zone in zones
        if shard_for_zone(zone.to_text(), num_shards) in wanted
    ]


def partition_zones(
    zones: Sequence[Name], num_shards: int, workers: int
) -> List[List[Name]]:
    """Every worker's share of *zones* — disjoint and complete."""
    return [
        zones_for_buckets(zones, num_shards, bucket_range)
        for bucket_range in bucket_ranges(num_shards, workers)
    ]


def stored_zones_for_buckets(root: Path, buckets: Iterable[int]) -> Set[str]:
    """Dotted names of zones already persisted at *root* whose bucket is
    in *buckets*.

    This is the bucket-filtered analogue of
    :meth:`repro.store.CampaignStore.completed_zones`: only shard
    segments belonging to the wanted buckets are read, so a worker's
    skip-set costs I/O proportional to its own share of the store, not
    the whole campaign.
    """
    wanted = set(buckets)
    root = Path(root)
    manifest = load_manifest(root)
    done: Set[str] = set()
    for info in manifest.shards:
        if info.bucket not in wanted:
            continue
        path = root / info.path
        with open_results_read(str(path)) as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                try:
                    done.add(json.loads(line)["zone"])
                except (json.JSONDecodeError, KeyError) as exc:
                    raise ShardCorruption(
                        f"corrupt record inside committed shard {info.path}"
                    ) from exc
    return done
