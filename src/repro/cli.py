"""Command line interface: regenerate the paper's tables and figures.

Canonical command families::

    repro-dnssec campaign run --scale 1e-5 --artifact all
    repro-dnssec campaign run --store ./campaign --workers 4
    repro-dnssec campaign resume --store ./campaign
    repro-dnssec campaign stats --store ./campaign
    repro-dnssec monitor init --store ./monitor --scale 1e-5
    repro-dnssec monitor advance --store ./monitor --epochs 3
    repro-dnssec monitor diff --store ./monitor

``repro-dnssec report``, ``repro-dnssec store init|resume`` and the
top-level ``stats`` remain as thin aliases for existing scripts; they
print a deprecation pointer to stderr (stderr, so piped stdout stays
byte-stable) and delegate to the canonical command.  Every subcommand
spells its store flag ``--store`` (``--dir`` is accepted as a synonym)
and shares the ``--workers`` / ``--in-flight`` / ``--transport`` /
``--chaos`` / ``--retries`` vocabulary.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ecosystem.world import build_world
from repro.reports.compare import check_shapes
from repro.reports.figure1 import compute_figure1, expected_figure1, render_figure1
from repro.reports.table1 import compute_table1, expected_table1, render_table1
from repro.reports.table2 import compute_table2, expected_table2, render_table2
from repro.reports.table3 import compute_table3, expected_table3, render_table3

ARTIFACTS = ("table1", "table2", "table3", "figure1", "tld", "security")


def _deprecated(old: str, new: str) -> None:
    """Deprecation pointer for alias commands — stderr only, so CI jobs
    diffing stdout against golden output are unaffected."""
    print(f"note: '{old}' is deprecated; use '{new}'", file=sys.stderr)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1e-5,
        help="population scale relative to the paper's 287.6M zones (default 1e-5)",
    )
    parser.add_argument("--seed", type=int, default=1, help="world seed (default 1)")


def _add_store(
    parser: argparse.ArgumentParser, required: bool = True, help: Optional[str] = None
) -> None:
    """The uniform store flag: ``--store``, with ``--dir`` kept as a
    compatible synonym for scripts written against the old spelling."""
    parser.add_argument(
        "--store",
        "--dir",
        dest="store",
        required=required,
        help=help or "campaign store directory",
    )


def _add_workers(parser: argparse.ArgumentParser, help: Optional[str] = None) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=help or "scan with N worker processes (same report, less wall-clock)",
    )


def _chaos_spec(value: str):
    """argparse type for --chaos: 'off', 'default', or 'field=value,...'."""
    from repro.chaos import ChaosConfig

    try:
        return ChaosConfig.from_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _retry_spec(value: str):
    """argparse type for --retries: 'off', 'default', N, or 'field=value,...'."""
    from repro.chaos import RetryPolicy

    try:
        return RetryPolicy.from_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_chaos(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos",
        type=_chaos_spec,
        default=None,
        metavar="SPEC",
        help="inject faults: 'default', or 'loss=0.1,servfail=0.05,...' "
        "(seeded and replayable; the report still matches the fault-free run)",
    )
    parser.add_argument(
        "--retries",
        type=_retry_spec,
        default=None,
        metavar="SPEC",
        help="retry/backoff policy: 'default', a max attempt count, or "
        "'attempts=4,base=0.25,...' (implied by --chaos)",
    )


def _scenario_spec(value: str):
    """argparse type for --scenarios: 'off', 'default', or 'field=value,...'."""
    from repro.scenarios import ScenarioSpec

    try:
        return ScenarioSpec.from_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_scenarios(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenarios",
        type=_scenario_spec,
        default=None,
        metavar="SPEC",
        help="key-transition & adversarial operator plane (repro.scenarios): "
        "'default', or 'seed=2,intensity=4,mishap=0.3,transitions=false,...' "
        "(seeded; worlds are identical across layouts and resume)",
    )


def _add_in_flight(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--in-flight",
        type=int,
        default=None,
        metavar="N",
        help="overlap up to N zones per scan machine on the deterministic "
        "event loop (repro.sched); the report is byte-identical to the "
        "serial scan, only the simulated duration drops",
    )


def _add_transport(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transport",
        choices=("sim", "wire"),
        default="sim",
        help="message transport: 'sim' moves wire-format messages through "
        "the in-memory fabric; 'wire' (repro.wire) hosts the authoritative "
        "fleet on real loopback sockets and scans over asyncio UDP/TCP — "
        "same analysis tables, real I/O",
    )


# -- canonical campaign family ----------------------------------------------


def _print_artifacts(campaign, artifact: str) -> None:
    report, targets = campaign.report, campaign.world.targets
    wanted = ARTIFACTS if artifact == "all" else (artifact,)
    sections: List[str] = []
    if "table1" in wanted:
        sections.append(render_table1(compute_table1(report), expected_table1(targets)))
    if "table2" in wanted:
        sections.append(render_table2(compute_table2(report), expected_table2(targets)))
    if "table3" in wanted:
        sections.append(render_table3(compute_table3(report), expected_table3(targets)))
    if "figure1" in wanted:
        sections.append(render_figure1(compute_figure1(report), expected_figure1(targets)))
    if "tld" in wanted:
        from repro.reports.tld import compute_tld_report, render_tld_report

        sections.append(render_tld_report(compute_tld_report(report)))
    if "security" in wanted:
        from repro.reports.table_security import compute_security, render_security

        sections.append(render_security(compute_security(report)))
    print("\n\n".join(sections))
    queries = campaign.world.network.queries_sent
    if campaign.machines:
        # Worker scan queries live on the worker networks; the parent
        # world only saw the re-check traffic.
        queries += sum(machine.queries for machine in campaign.machines)
    print(
        f"\nScanned {report.total_scanned} zones "
        f"({queries} queries, "
        f"{campaign.simulated_duration:.0f}s simulated scan time, "
        f"{len(campaign.rechecked)} transient failures resolved on re-check)"
    )
    if campaign.machines:
        for machine in campaign.machines:
            print(
                f"  machine {machine.index}: {machine.zones} zones, "
                f"{machine.queries} queries, {machine.duration:.0f}s"
            )


def _heartbeat_printer(stats: dict) -> None:
    """Live worker-liveness line (parallel runs with --telemetry)."""
    worker = stats.get("worker", stats.get("index", "?"))
    if stats.get("heartbeat"):
        done, total = stats.get("zones_done", 0), stats.get("zones_total", "?")
        print(f"  [w{worker:02d}] {done}/{total} zones", flush=True)
    elif "duration" in stats:
        print(
            f"  [w{worker:02d}] finished: {stats.get('zones', '?')} zones, "
            f"{stats.get('queries', '?')} queries",
            flush=True,
        )


def _campaign_config(args: argparse.Namespace, store_dir, telemetry):
    from repro.campaign import CampaignConfig

    return CampaignConfig(
        scale=args.scale,
        seed=args.seed,
        recheck=not args.no_recheck,
        store_dir=store_dir,
        checkpoint_every=getattr(args, "checkpoint_every", None),
        num_shards=getattr(args, "shards", None),
        compress=not getattr(args, "no_gzip", False),
        stop_after=getattr(args, "stop_after", 0) or None,
        workers=args.workers or None,
        in_flight=args.in_flight,
        telemetry=telemetry,
        chaos=args.chaos,
        retry=args.retries,
        transport=getattr(args, "transport", "sim"),
        time_scale=getattr(args, "time_scale", 0.0),
        scenarios=getattr(args, "scenarios", None),
    )


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """One campaign, in-memory or store-backed.

    Without ``--store`` the campaign runs in memory and prints the
    selected report artifacts (the old ``report`` command); with
    ``--store`` results are persisted shard-by-shard and the store
    summary is printed (the old ``store init``).
    """
    from repro.campaign import run_campaign
    from repro.parallel import ParallelCampaignError

    telemetry: object = False
    if getattr(args, "telemetry", False):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        telemetry.on_heartbeat = _heartbeat_printer

    store = getattr(args, "store", None)
    if store is None:
        if args.workers:
            # Parallel execution needs a store for the workers to commit
            # into; the report itself is byte-identical to the sequential
            # one, so a throwaway directory is all we need.
            import tempfile
            from pathlib import Path

            with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
                campaign = run_campaign(_campaign_config(args, Path(tmp) / "store", telemetry))
        else:
            campaign = run_campaign(_campaign_config(args, None, telemetry))
        _print_artifacts(campaign, getattr(args, "artifact", "all"))
        return 0

    try:
        config = _campaign_config(args, store, telemetry)
        config.validate()
    except ValueError as exc:
        print(f"invalid campaign configuration: {exc}", file=sys.stderr)
        return 2
    try:
        campaign = run_campaign(config)
    except ParallelCampaignError as exc:
        print(exc)
        print(f"\nfinish with: repro-dnssec campaign resume --store {store}")
        return 1
    from repro.store import StoreReader

    summary = StoreReader(store).summary()
    print(summary.render())
    if summary.status != "complete":
        print(
            f"\ncampaign interrupted; finish with: "
            f"repro-dnssec campaign resume --store {store}"
        )
    else:
        print(f"\n{len(campaign.rechecked)} transient failures resolved on re-check")
    return 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    """Finish an interrupted campaign from its manifest.

    Campaigns started with ``--workers`` resume in parallel with the
    recorded worker count; ``--workers`` here overrides it (any subset
    of crashed workers is tolerated — finished shares are skipped).
    """
    from repro.campaign import resume_campaign
    from repro.store import StoreReader

    telemetry = None
    if args.telemetry:
        from repro.obs import Telemetry

        telemetry = Telemetry()
        telemetry.on_heartbeat = _heartbeat_printer
    campaign = resume_campaign(
        args.store,
        workers=args.workers or None,
        telemetry=telemetry,
        chaos=args.chaos,
        retry=args.retries,
        in_flight=args.in_flight,
    )
    print(StoreReader(args.store).summary().render())
    print(f"\n{len(campaign.rechecked)} transient failures resolved on re-check")
    return 0


def cmd_campaign_stats(args: argparse.Namespace) -> int:
    """Render a campaign telemetry report from a store's event streams."""
    from repro.obs import collect_stats, render_stats
    from repro.store import StoreError

    try:
        stats = collect_stats(args.store)
    except StoreError as exc:
        print(f"cannot read campaign telemetry: {exc}", file=sys.stderr)
        return 2
    print(render_stats(stats))
    return 0


# -- deprecated aliases ------------------------------------------------------


def cmd_report(args: argparse.Namespace) -> int:
    _deprecated("repro-dnssec report", "repro-dnssec campaign run")
    args.store = None
    if getattr(args, "artifact_pos", None):
        args.artifact = args.artifact_pos
    return cmd_campaign_run(args)


def cmd_store_init(args: argparse.Namespace) -> int:
    _deprecated("repro-dnssec store init", "repro-dnssec campaign run --store")
    return cmd_campaign_run(args)


def cmd_store_resume(args: argparse.Namespace) -> int:
    _deprecated("repro-dnssec store resume", "repro-dnssec campaign resume")
    return cmd_campaign_resume(args)


def cmd_stats(args: argparse.Namespace) -> int:
    _deprecated("repro-dnssec stats", "repro-dnssec campaign stats --store")
    args.store = args.dir
    return cmd_campaign_stats(args)


# -- continuous monitoring (repro.monitor) -----------------------------------


def cmd_monitor_init(args: argparse.Namespace) -> int:
    """Create a monitor root: an evolving world observed week by week."""
    from repro.monitor import Monitor, MonitorConfig, MonitorError, MonitorSpec

    spec = MonitorSpec(seed=args.monitor_seed, scenarios=getattr(args, "scenarios", None))
    if args.event_rate_scale != 1.0:
        spec = spec.scaled(args.event_rate_scale)
    config = MonitorConfig(
        root=args.store,
        scale=args.scale,
        seed=args.seed,
        monitor=spec,
        workers=args.workers or None,
        in_flight=args.in_flight,
        transport=args.transport,
        telemetry=args.telemetry,
        checkpoint_every=args.checkpoint_every,
        num_shards=args.shards,
        compress=not args.no_gzip,
    )
    try:
        monitor = Monitor.init(config)
    except MonitorError as exc:
        print(f"cannot initialise monitor: {exc}", file=sys.stderr)
        return 2
    print(monitor.status().render())
    print(f"\nadvance with: repro-dnssec monitor advance --store {args.store}")
    return 0


def cmd_monitor_advance(args: argparse.Namespace) -> int:
    """Advance the monitor by N simulated weeks (delta campaigns).

    An interrupted epoch is resumed first and counts as one of the N.
    """
    from repro.monitor import Monitor, MonitorError

    try:
        monitor = Monitor.open(args.store)
    except MonitorError as exc:
        print(f"cannot open monitor: {exc}", file=sys.stderr)
        return 2
    agent = None
    if getattr(args, "agent", False):
        from repro.agent import Agent

        agent = Agent()
    remaining = args.epochs
    results = []
    try:
        if monitor.in_progress_epoch() is not None:
            epoch = monitor.in_progress_epoch()
            print(f"resuming interrupted epoch {epoch} ...")
            results.append(monitor.resume(agent=agent))
            remaining -= 1
        while remaining > 0:
            results.append(monitor.run_epoch(agent=agent))
            remaining -= 1
    except MonitorError as exc:
        print(f"monitor advance failed: {exc}", file=sys.stderr)
        return 1
    for result in results:
        kind = "baseline (full scan)" if result.epoch == 0 else "delta"
        print(
            f"epoch {result.epoch}: {kind}, scanned {result.zones_scanned} zones, "
            f"{len(result.events)} events applied, "
            f"{result.simulated_duration:.0f}s simulated"
        )
        if result.agent is not None:
            print(
                f"  agent: {result.agent.considered} considered, "
                f"{len(result.agent.secured)} secured, "
                f"{len(result.agent.rejected)} rejected"
            )
    print(monitor.status().render())
    return 0


def cmd_monitor_status(args: argparse.Namespace) -> int:
    from repro.monitor import Monitor, MonitorError

    try:
        monitor = Monitor.open(args.store)
    except MonitorError as exc:
        print(f"cannot open monitor: {exc}", file=sys.stderr)
        return 2
    print(monitor.status().render())
    return 0


def cmd_monitor_diff(args: argparse.Namespace) -> int:
    """Epoch-over-epoch classification diff (merged views, not raw stores)."""
    from repro.monitor import Monitor, MonitorError, render_epoch_diff

    try:
        monitor = Monitor.open(args.store)
        epoch_diff = monitor.diff(old=args.old, new=args.new)
    except MonitorError as exc:
        print(f"monitor diff failed: {exc}", file=sys.stderr)
        return 2
    print(render_epoch_diff(epoch_diff))
    if args.checks:
        # Shape checks over the new epoch's merged view: a failure names
        # the diverging epoch/table pair (see repro.reports.compare).
        report = monitor.analyze(epoch=epoch_diff.new_epoch)
        checks = check_shapes(
            report, compute_table3(report), epoch=epoch_diff.new_epoch
        )
        print()
        for check in checks:
            print(check)
        failed = [c for c in checks if not c.passed]
        print(f"\n{len(checks) - len(failed)}/{len(checks)} shape checks passed")
        return 1 if failed else 0
    return 0


# -- the parental agent: repro-dnssec agent run|status|actions ---------------


def _open_monitor(store):
    from repro.monitor import Monitor, MonitorError

    try:
        return Monitor.open(store), None
    except MonitorError as exc:
        return None, exc


def cmd_agent_run(args: argparse.Namespace) -> int:
    """Act on a completed epoch: re-authenticate, provision, verify."""
    from repro.agent import Agent, AgentError
    from repro.obs import Telemetry
    from repro.obs.events import agent_events_path

    monitor, error = _open_monitor(args.store)
    if monitor is None:
        print(f"cannot open monitor: {error}", file=sys.stderr)
        return 2
    telemetry = Telemetry() if args.telemetry else None
    try:
        run = Agent().run(monitor, epoch=args.epoch, telemetry=telemetry)
    except AgentError as exc:
        print(f"agent run failed: {exc}", file=sys.stderr)
        return 1
    if telemetry is not None:
        telemetry.flush_counters()
        if telemetry.events:
            telemetry.open_sink(agent_events_path(monitor.root))
            telemetry.close()
    print(
        f"epoch {run.epoch}: {run.considered} zones considered, "
        f"{len(run.secured)} secured, {len(run.rejected)} rejected, "
        f"{run.skipped} already recorded"
    )
    for zone in run.secured:
        print(f"  secured {zone}")
    if run.actions:
        print(f"\nledger: {args.store}/agent/actions.jsonl")
    return 0


def cmd_agent_status(args: argparse.Namespace) -> int:
    """The convergence report over the recorded actions ledger."""
    from repro.agent import compute_convergence, ledger_path, read_ledger, render_convergence

    monitor, error = _open_monitor(args.store)
    if monitor is None:
        print(f"cannot open monitor: {error}", file=sys.stderr)
        return 2
    ledger = read_ledger(ledger_path(monitor.root))
    if not ledger:
        print("no agent actions recorded yet")
        return 0
    print(render_convergence(compute_convergence(ledger)))
    return 0


def cmd_agent_actions(args: argparse.Namespace) -> int:
    """Dump ledger entries (canonical JSON lines, filterable)."""
    from repro.agent import ledger_path, read_ledger

    monitor, error = _open_monitor(args.store)
    if monitor is None:
        print(f"cannot open monitor: {error}", file=sys.stderr)
        return 2
    for action in read_ledger(ledger_path(monitor.root)):
        if args.epoch is not None and action.epoch != args.epoch:
            continue
        if args.action is not None and action.action != args.action:
            continue
        print(action.to_line())
    return 0


# -- one-shot inspection commands -------------------------------------------


def cmd_checks(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignConfig, run_campaign

    campaign = run_campaign(CampaignConfig(scale=args.scale, seed=args.seed))
    checks = check_shapes(
        campaign.report, compute_table3(campaign.report), campaign.world.targets
    )
    for check in checks:
        print(check)
    failed = [c for c in checks if not c.passed]
    print(f"\n{len(checks) - len(failed)}/{len(checks)} shape checks passed")
    return 1 if failed else 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.core import assess_zone

    world = build_world(scale=args.scale, seed=args.seed)
    scanner = world.make_scanner()
    zone = args.zone or world.scan_list[0].to_text()
    result = scanner.scan_zone(zone)
    assessment = assess_zone(result)
    print(f"zone:            {assessment.zone}")
    print(f"status:          {assessment.status.value}")
    if assessment.status_detail:
        print(f"status detail:   {assessment.status_detail.value}")
    print(f"eligibility:     {assessment.eligibility.value}")
    print(f"signal outcome:  {assessment.signal_outcome.value}")
    print(f"CDS present:     {assessment.cds.present}")
    print(f"CDS consistent:  {assessment.cds.consistent}")
    print(f"CDS delete:      {assessment.cds.is_delete}")
    for entry in assessment.signal.per_ns:
        print(
            f"signal @ {entry.ns_host}: present={entry.present} "
            f"chain={entry.chain_status.value} sigs_valid={entry.sigs_valid} "
            f"cut={entry.has_zone_cut}"
        )
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    """Scan a world and dump the raw results as JSON lines.

    Results stream straight from the scanner to disk (gzipped when the
    output path ends in ``.gz``) — nothing is held in memory.
    """
    from repro.scanner.serialize import dump_results, open_results_write

    world = build_world(scale=args.scale, seed=args.seed)
    scanner = world.make_scanner()
    zones = world.scan_list[: args.limit] if args.limit else world.scan_list
    with open_results_write(args.output) as fp:
        count = dump_results(scanner.scan_iter(zones), fp)
    print(
        f"scanned {count} zones ({world.network.queries_sent} queries) -> {args.output}"
    )
    return 0


def _print_report_summary(report) -> None:
    print(f"analysed {report.total_scanned} stored results")
    for status, count in sorted(report.status_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {status.value:<12} {count}")
    for outcome, count in sorted(report.outcome_counts.items(), key=lambda kv: -kv[1]):
        if outcome.value != "no_signal":
            print(f"  signal:{outcome.value:<28} {count}")


def cmd_analyze(args: argparse.Namespace) -> int:
    """Re-analyse stored scan results offline (no network, no world).

    Streams the file through the pipeline in O(1) memory; gzip input is
    auto-detected, truncated trailing lines (crash artefacts) are
    skipped and counted unless ``--strict``.
    """
    from repro.core import AnalysisPipeline
    from repro.scanner.serialize import LoadStats, load_results_path

    stats = LoadStats()
    report = AnalysisPipeline().analyze(
        load_results_path(args.input, strict=args.strict, stats=stats)
    )
    _print_report_summary(report)
    if stats.skipped:
        print(f"  (skipped {stats.skipped} corrupt record(s))")
    return 0


# -- campaign warehouse ------------------------------------------------------


def cmd_store_status(args: argparse.Namespace) -> int:
    """Inspect a campaign store (existence always checked; --verify
    re-hashes every shard against its manifest digest)."""
    from repro.store import StoreReader

    reader = StoreReader(args.store, verify_digests=args.verify)
    print(reader.summary().render())
    if args.verify:
        print("integrity: all shard digests verified")
    return 0


def cmd_store_diff(args: argparse.Namespace) -> int:
    """Longitudinal comparison of two stored campaigns."""
    from repro.store import StoreReader, diff_stores, render_diff

    diff = diff_stores(StoreReader(args.old), StoreReader(args.new))
    print(render_diff(diff))
    return 0


def cmd_store_reanalyze(args: argparse.Namespace) -> int:
    """Stream a stored campaign back through the analysis pipeline."""
    from repro.store import StoreReader

    report = StoreReader(args.store, verify_digests=args.verify).reanalyze()
    _print_report_summary(report)
    return 0


# -- read-serving plane (repro.query) ----------------------------------------


def _campaign_operator_db(store_dir=None):
    """The same operator DB every world carries — the profile catalogue
    is seed/scale-independent, so no world build is needed to attribute
    operators during an index build.  When *store_dir* is given, the
    manifest decides whether the adversarial scenario operators join
    the catalogue (their suffixes only ever match scenario zones)."""
    from repro.core.operators import OperatorDB
    from repro.ecosystem.profiles import build_profiles, operator_db_config

    adversarial = False
    if store_dir is not None:
        try:
            from pathlib import Path

            from repro.store.manifest import load_manifest

            config = load_manifest(Path(store_dir)).config
            monitor = config.get("monitor") or {}
            adversarial = (
                config.get("scenarios") is not None
                or monitor.get("scenarios") is not None
            )
        except Exception:
            adversarial = False
    suffixes, _ = operator_db_config(build_profiles(adversarial=adversarial))
    return OperatorDB(suffixes=suffixes)


def _flush_query_telemetry(telemetry, store_dir) -> None:
    """Append this session's query counters to <store>/events/query.jsonl."""
    from repro.obs.events import query_events_path

    telemetry.flush_counters()
    if telemetry.events:
        telemetry.open_sink(query_events_path(store_dir))
        telemetry.close()


def cmd_query_index(args: argparse.Namespace) -> int:
    """Compact a campaign store into its query snapshot."""
    from repro.obs import Telemetry
    from repro.query import build_index
    from repro.store import StoreError

    telemetry = Telemetry()
    operator_db = None if args.no_operators else _campaign_operator_db(args.store)
    try:
        snapshot = build_index(args.store, operator_db=operator_db, telemetry=telemetry)
    except StoreError as exc:
        print(f"cannot index store: {exc}", file=sys.stderr)
        return 2
    _flush_query_telemetry(telemetry, args.store)
    print(
        f"indexed {snapshot.records} zones into {snapshot.num_buckets} buckets "
        f"under {args.store}/index"
    )
    return 0


def cmd_query_get(args: argparse.Namespace) -> int:
    """Point lookup: one zone's status view (or full record with --full)."""
    from repro.obs import Telemetry
    from repro.query import QueryError, QueryService
    from repro.scanner.serialize import result_to_line

    telemetry = Telemetry()
    try:
        with QueryService(args.store, telemetry=telemetry) as service:
            view = service.zone_status(args.zone)
            if view is not None and args.full:
                record = service.zone_record(args.zone)
            stale = service.check_stale()
    except QueryError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 2
    _flush_query_telemetry(telemetry, args.store)
    if view is None:
        print(f"zone {args.zone} is not in the snapshot")
        return 1
    if args.full:
        print(result_to_line(record))
    else:
        print(view.render())
    if stale:
        print(
            "(snapshot is stale: the store has newer records — rebuild "
            f"with: repro-dnssec query index --store {args.store})"
        )
    return 0


def cmd_query_list(args: argparse.Namespace) -> int:
    """Enumerate zones by status class or operator (columnar scan)."""
    from repro.obs import Telemetry
    from repro.query import QueryError, QueryService

    telemetry = Telemetry()
    try:
        with QueryService(args.store, telemetry=telemetry) as service:
            if args.status:
                zones = service.zones_with_status(args.status)
                label = f"status={args.status}"
            elif args.operator:
                zones = service.zones_for_operator(args.operator)
                label = f"operator={args.operator}"
            else:
                counts = service.status_counts()
                for status, count in sorted(counts.items(), key=lambda kv: -kv[1]):
                    print(f"  {status:<12} {count}")
                print(f"{sum(counts.values())} zones indexed")
                _flush_query_telemetry(telemetry, args.store)
                return 0
    except QueryError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 2
    _flush_query_telemetry(telemetry, args.store)
    shown = zones if args.limit == 0 else zones[: args.limit]
    for zone in shown:
        print(zone)
    if len(zones) > len(shown):
        print(f"... {len(zones)} zones total ({label})")
    return 0


def cmd_query_dashboard(args: argparse.Namespace) -> int:
    """Per-operator deployment dashboard from the columnar sidecars."""
    from repro.obs import Telemetry
    from repro.query import QueryError, QueryService
    from repro.reports.dashboard import zone_status_dashboard

    telemetry = Telemetry()
    try:
        with QueryService(args.store, telemetry=telemetry) as service:
            print(zone_status_dashboard(service, limit=args.limit))
    except QueryError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 2
    _flush_query_telemetry(telemetry, args.store)
    return 0


def cmd_query_verify(args: argparse.Namespace) -> int:
    """Re-hash every snapshot file against its recorded digest."""
    from repro.query import QueryError, verify_snapshot

    try:
        snapshot = verify_snapshot(args.store)
    except QueryError as exc:
        print(f"snapshot verification failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"snapshot OK: {snapshot.records} zones, {snapshot.num_buckets} buckets, "
        "all digests verified"
    )
    return 0


def cmd_query_serve(args: argparse.Namespace) -> int:
    """Serve lookups for zone names read line-by-line from stdin."""
    from repro.obs import Telemetry
    from repro.query import QueryError, QueryService

    telemetry = Telemetry()
    try:
        service = QueryService(args.store, telemetry=telemetry)
    except QueryError as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 2
    with service:
        print(service.summary())
        print("reading zone names from stdin (one per line) ...", flush=True)
        served = 0
        for line in sys.stdin:
            zone = line.strip()
            if not zone:
                continue
            view = service.zone_status(zone)
            if view is None:
                print(f"{zone}\tNXDOMAIN")
            else:
                print(
                    f"{view.zone}\t{view.status}\t{view.eligibility}\t"
                    f"{view.outcome}\t{view.operator}"
                )
            served += 1
    _flush_query_telemetry(telemetry, args.store)
    print(f"served {served} lookups", flush=True)
    return 0


def cmd_bootstrap(args: argparse.Namespace) -> int:
    """Play registry: run an acceptance policy and provision DS RRsets."""
    from collections import Counter

    from repro.provisioning import (
        AcceptAfterDelayPolicy,
        AcceptFromInceptionPolicy,
        AcceptWithChallengePolicy,
        AuthenticatedBootstrapPolicy,
        BootstrapEngine,
    )

    policies = {
        "rfc9615": AuthenticatedBootstrapPolicy,
        "delay": AcceptAfterDelayPolicy,
        "challenge": AcceptWithChallengePolicy,
        "inception": AcceptFromInceptionPolicy,
    }
    world = build_world(scale=args.scale, seed=args.seed)
    engine = BootstrapEngine(world, policies[args.policy]())
    run = engine.run()
    print(f"policy:    {run.policy}")
    print(f"evaluated: {run.evaluated}")
    print(f"accepted:  {len(run.accepted)}")
    print(f"secured:   {len(run.secured)} (verified by re-scan)")
    print(f"deferred:  {len(run.deferred)}")
    print(f"rejected:  {len(run.rejected)}")
    for reason, count in Counter(run.rejected.values()).most_common(8):
        print(f"  {count:>6}  {reason}")
    return 0


def cmd_list_zones(args: argparse.Namespace) -> int:
    world = build_world(scale=args.scale, seed=args.seed)
    for name in world.scan_list[: args.limit]:
        spec = world.specs[name.to_text().rstrip(".")]
        print(f"{name.to_text():<70} {spec.operator:<18} {spec.status.value}")
    print(f"... {world.zone_count} zones total")
    return 0


def cmd_trend(args: argparse.Namespace) -> int:
    from repro.ecosystem.evolution import measure_trend

    print(f"{'year':<6} {'secured %':>9} {'invalid %':>9} {'islands %':>9} {'signal':>7}")
    for point in measure_trend(scale=args.scale, seed=args.seed):
        print(
            f"{point.year:<6} {point.secured_pct:>9.2f} {point.invalid_pct:>9.2f} "
            f"{point.islands_pct:>9.2f} {point.with_signal:>7}"
        )
    return 0


# -- parser ------------------------------------------------------------------


def _add_campaign_run_options(parser: argparse.ArgumentParser) -> None:
    """The full campaign-run vocabulary, shared by the canonical command
    and its two deprecated aliases (``report`` and ``store init``)."""
    _add_common(parser)
    parser.add_argument("--artifact", choices=(*ARTIFACTS, "all"), default="all")
    parser.add_argument(
        "--no-recheck", action="store_true", help="skip the transient re-check pass"
    )
    parser.add_argument("--shards", type=int, default=None, help="zone-hash buckets")
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, help="records per durable commit"
    )
    parser.add_argument("--no-gzip", action="store_true", help="store plain JSONL shards")
    parser.add_argument(
        "--stop-after",
        type=int,
        default=0,
        help="abort after N zones, leaving the store resumable (crash stand-in)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="stream deterministic telemetry events into <store>/events/",
    )
    _add_workers(parser)
    _add_in_flight(parser)
    _add_transport(parser)
    _add_scenarios(parser)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="pace wire replay: N wall seconds per simulated second, e.g. "
        "0.01 plays 100 simulated seconds in ~1s (0 = run flat out; "
        "requires --transport wire)",
    )
    _add_chaos(parser)


def _add_campaign_resume_options(parser: argparse.ArgumentParser) -> None:
    _add_workers(
        parser,
        help="resume with N worker processes (default: the campaign's recorded count)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="stream telemetry for the resumed remainder (implied when the "
        "campaign was started with --telemetry)",
    )
    _add_in_flight(parser)
    _add_chaos(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dnssec",
        description="Reproduce 'Measuring the Deployment of DNSSEC Bootstrapping "
        "Using Authenticated Signals' (IMC 2025) on a synthetic DNS ecosystem.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # -- canonical: repro-dnssec campaign run|resume|stats
    campaign = sub.add_parser(
        "campaign", help="run, resume, and inspect scan campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="run one campaign (in-memory report, or persisted with --store)"
    )
    _add_store(campaign_run, required=False, help="persist results into this store")
    _add_campaign_run_options(campaign_run)
    campaign_run.set_defaults(func=cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="finish an interrupted campaign from its manifest"
    )
    _add_store(campaign_resume)
    _add_campaign_resume_options(campaign_resume)
    campaign_resume.set_defaults(func=cmd_campaign_resume)

    campaign_stats = campaign_sub.add_parser(
        "stats", help="render a campaign telemetry report from a store"
    )
    _add_store(campaign_stats)
    campaign_stats.set_defaults(func=cmd_campaign_stats)

    # -- canonical: repro-dnssec monitor init|advance|status|diff
    monitor = sub.add_parser(
        "monitor", help="continuous monitoring: epoch-based delta campaigns"
    )
    monitor_sub = monitor.add_subparsers(dest="monitor_command", required=True)

    monitor_init = monitor_sub.add_parser(
        "init", help="create a monitor root over an evolving world"
    )
    _add_store(monitor_init, help="monitor root directory to create")
    _add_common(monitor_init)
    monitor_init.add_argument(
        "--monitor-seed",
        type=int,
        default=1,
        help="seed for the operator-behaviour event stream (default 1)",
    )
    monitor_init.add_argument(
        "--event-rate-scale",
        type=float,
        default=1.0,
        help="multiply every per-zone weekly event rate (tiny test worlds "
        "need >1 to see events at all)",
    )
    monitor_init.add_argument("--shards", type=int, default=None, help="zone-hash buckets")
    monitor_init.add_argument(
        "--checkpoint-every", type=int, default=None, help="records per durable commit"
    )
    monitor_init.add_argument(
        "--no-gzip", action="store_true", help="store plain JSONL shards"
    )
    monitor_init.add_argument(
        "--telemetry",
        action="store_true",
        help="stream monitor.* counters and per-epoch spans into <root>/events/",
    )
    _add_workers(monitor_init, help="scan each epoch with N worker processes")
    _add_in_flight(monitor_init)
    _add_transport(monitor_init)
    _add_scenarios(monitor_init)
    monitor_init.set_defaults(func=cmd_monitor_init)

    monitor_advance = monitor_sub.add_parser(
        "advance", help="advance the monitor by N simulated weeks"
    )
    _add_store(monitor_advance, help="monitor root directory")
    monitor_advance.add_argument(
        "--epochs",
        type=int,
        default=1,
        help="how many epochs to advance (an interrupted epoch is resumed "
        "first and counts as one)",
    )
    monitor_advance.add_argument(
        "--agent",
        action="store_true",
        help="run the RFC 9615 parental agent after each completed epoch "
        "(verified installs feed the next epoch's change feed)",
    )
    monitor_advance.set_defaults(func=cmd_monitor_advance)

    monitor_status = monitor_sub.add_parser(
        "status", help="per-epoch completion and event summary"
    )
    _add_store(monitor_status, help="monitor root directory")
    monitor_status.set_defaults(func=cmd_monitor_status)

    monitor_diff = monitor_sub.add_parser(
        "diff", help="epoch-over-epoch classification diff"
    )
    _add_store(monitor_diff, help="monitor root directory")
    monitor_diff.add_argument(
        "--old", type=int, default=None, help="earlier epoch (default: new - 1)"
    )
    monitor_diff.add_argument(
        "--new", type=int, default=None, help="later epoch (default: last complete)"
    )
    monitor_diff.add_argument(
        "--checks",
        action="store_true",
        help="also run the paper shape checks on the new epoch's merged view "
        "(failures name the diverging epoch/table)",
    )
    monitor_diff.set_defaults(func=cmd_monitor_diff)

    # -- canonical: repro-dnssec agent run|status|actions
    agent = sub.add_parser(
        "agent", help="the RFC 9615 parental agent: provision DS for verified signals"
    )
    agent_sub = agent.add_subparsers(dest="agent_command", required=True)

    agent_run = agent_sub.add_parser(
        "run", help="act on a completed epoch (re-authenticate, provision, verify)"
    )
    _add_store(agent_run, help="monitor root directory")
    agent_run.add_argument(
        "--epoch",
        type=int,
        default=None,
        help="completed epoch to act on (default: newest complete)",
    )
    agent_run.add_argument(
        "--telemetry",
        action="store_true",
        help="append agent.* counters to <root>/events/agent.jsonl",
    )
    agent_run.set_defaults(func=cmd_agent_run)

    agent_status = agent_sub.add_parser(
        "status", help="convergence report over the actions ledger"
    )
    _add_store(agent_status, help="monitor root directory")
    agent_status.set_defaults(func=cmd_agent_status)

    agent_actions = agent_sub.add_parser(
        "actions", help="dump ledger entries as canonical JSON lines"
    )
    _add_store(agent_actions, help="monitor root directory")
    agent_actions.add_argument(
        "--epoch", type=int, default=None, help="only this epoch's decisions"
    )
    agent_actions.add_argument(
        "--action",
        choices=("secured", "rejected"),
        default=None,
        help="only decisions with this outcome",
    )
    agent_actions.set_defaults(func=cmd_agent_actions)

    # -- deprecated alias: report == campaign run (no store)
    report = sub.add_parser(
        "report", help="(deprecated: use 'campaign run') regenerate tables/figures"
    )
    report.add_argument(
        "artifact_pos",
        nargs="?",
        choices=(*ARTIFACTS, "all"),
        default=None,
        metavar="ARTIFACT",
        help="artifact to print (e.g. 'security'); same as --artifact",
    )
    _add_campaign_run_options(report)
    report.set_defaults(func=cmd_report, store=None)

    checks = sub.add_parser("checks", help="run the shape checks against the paper")
    _add_common(checks)
    checks.set_defaults(func=cmd_checks)

    audit = sub.add_parser("audit", help="audit one zone's AB readiness")
    _add_common(audit)
    audit.add_argument("--zone", help="zone name (defaults to the first in the world)")
    audit.set_defaults(func=cmd_audit)

    list_zones = sub.add_parser("list-zones", help="list generated zones")
    _add_common(list_zones)
    list_zones.add_argument("--limit", type=int, default=25)
    list_zones.set_defaults(func=cmd_list_zones)

    scan = sub.add_parser("scan", help="scan and store raw results (JSON lines)")
    _add_common(scan)
    scan.add_argument("--output", default="scan-results.jsonl")
    scan.add_argument("--limit", type=int, default=0, help="scan only the first N zones")
    scan.set_defaults(func=cmd_scan)

    analyze = sub.add_parser("analyze", help="re-analyse stored scan results offline")
    analyze.add_argument("--input", default="scan-results.jsonl")
    analyze.add_argument(
        "--strict", action="store_true", help="raise on corrupt records instead of skipping"
    )
    analyze.set_defaults(func=cmd_analyze)

    store = sub.add_parser(
        "store", help="sharded campaign warehouse (checkpoint/resume/diff)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    # deprecated alias: store init == campaign run --store
    store_init = store_sub.add_parser(
        "init", help="(deprecated: use 'campaign run --store') run a persisted campaign"
    )
    _add_store(store_init, help="store directory to create")
    _add_campaign_run_options(store_init)
    store_init.set_defaults(func=cmd_store_init)

    store_status = store_sub.add_parser("status", help="inspect a campaign store")
    _add_store(store_status)
    store_status.add_argument(
        "--verify", action="store_true", help="re-hash every shard against the manifest"
    )
    store_status.set_defaults(func=cmd_store_status)

    # deprecated alias: store resume == campaign resume
    store_resume = store_sub.add_parser(
        "resume", help="(deprecated: use 'campaign resume') finish an interrupted campaign"
    )
    _add_store(store_resume)
    _add_campaign_resume_options(store_resume)
    store_resume.set_defaults(func=cmd_store_resume)

    store_diff = store_sub.add_parser(
        "diff", help="longitudinal diff of two stored campaigns"
    )
    store_diff.add_argument("--old", required=True, help="earlier campaign store")
    store_diff.add_argument("--new", required=True, help="later campaign store")
    store_diff.set_defaults(func=cmd_store_diff)

    store_reanalyze = store_sub.add_parser(
        "reanalyze", help="stream a stored campaign through the pipeline"
    )
    _add_store(store_reanalyze)
    store_reanalyze.add_argument("--verify", action="store_true")
    store_reanalyze.set_defaults(func=cmd_store_reanalyze)

    # deprecated alias: stats == campaign stats --store
    stats = sub.add_parser(
        "stats", help="(deprecated: use 'campaign stats') telemetry report from a store"
    )
    stats.add_argument("dir", help="campaign store directory")
    stats.set_defaults(func=cmd_stats)

    query = sub.add_parser(
        "query", help="read-serving plane: indexed per-zone status lookups"
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)

    query_index = query_sub.add_parser(
        "index", help="compact a store into its query snapshot"
    )
    _add_store(query_index)
    query_index.add_argument(
        "--no-operators",
        action="store_true",
        help="skip operator attribution (zones attribute to 'unknown')",
    )
    query_index.set_defaults(func=cmd_query_index)

    query_get = query_sub.add_parser("get", help="point lookup for one zone")
    _add_store(query_get)
    query_get.add_argument("zone", help="zone name (with or without trailing dot)")
    query_get.add_argument(
        "--full", action="store_true", help="print the full archived record as JSON"
    )
    query_get.set_defaults(func=cmd_query_get)

    query_list = query_sub.add_parser(
        "list", help="enumerate zones by status class or operator"
    )
    _add_store(query_list)
    query_list.add_argument("--status", help="status class (e.g. island, secure)")
    query_list.add_argument("--operator", help="operator name (e.g. Cloudflare)")
    query_list.add_argument("--limit", type=int, default=50, help="0 = unlimited")
    query_list.set_defaults(func=cmd_query_list)

    query_dashboard = query_sub.add_parser(
        "dashboard", help="per-operator deployment dashboard"
    )
    _add_store(query_dashboard)
    query_dashboard.add_argument("--limit", type=int, default=20)
    query_dashboard.set_defaults(func=cmd_query_dashboard)

    query_verify = query_sub.add_parser(
        "verify", help="re-hash the snapshot against its digests"
    )
    _add_store(query_verify)
    query_verify.set_defaults(func=cmd_query_verify)

    query_serve = query_sub.add_parser(
        "serve", help="answer zone lookups read from stdin"
    )
    _add_store(query_serve)
    query_serve.set_defaults(func=cmd_query_serve)

    bootstrap = sub.add_parser("bootstrap", help="run a registry acceptance policy")
    _add_common(bootstrap)
    bootstrap.add_argument(
        "--policy",
        choices=("rfc9615", "delay", "challenge", "inception"),
        default="rfc9615",
    )
    bootstrap.set_defaults(func=cmd_bootstrap)

    trend = sub.add_parser("trend", help="regenerate the 2017-2025 deployment trajectory")
    trend.add_argument("--scale", type=float, default=2e-6)
    trend.add_argument("--seed", type=int, default=1)
    trend.set_defaults(func=cmd_trend)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
