#!/usr/bin/env python3
"""Quickstart: build a tiny synthetic DNS ecosystem, scan it YoDNS-style,
and classify every zone's DNSSEC bootstrapping status.

Run:  python examples/quickstart.py
"""

from repro.core import AnalysisPipeline
from repro.ecosystem import build_world


def main() -> None:
    # A 1-per-million scale world: ~290 zones covering every scenario in
    # the paper — secure, unsigned, invalid, secure islands, CDS delete
    # requests, RFC 9615 signal zones with every misconfiguration class.
    world = build_world(scale=1 / 1_000_000, seed=42)
    print(f"built a world with {world.zone_count} zones "
          f"({len(world.network.addresses())} server addresses)\n")

    # Scan every zone: parent-side DS, per-NS CDS/CDNSKEY, signal zones.
    scanner = world.make_scanner()
    results = scanner.scan_many(world.scan_list)

    # Classify: DNSSEC status, CDS correctness, RFC 9615 acceptance.
    pipeline = AnalysisPipeline(world.operator_db)
    report = pipeline.analyze(results)

    print("DNSSEC status across the population:")
    for status, count in sorted(report.status_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {status.value:<12} {count:>6}  ({100 * count / report.total_scanned:.1f} %)")

    print("\nBootstrapping eligibility (Figure 1 classes):")
    for eligibility, count in sorted(report.eligibility_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {eligibility.value:<22} {count:>6}")

    print("\nRFC 9615 signal outcomes (Table 3 classes):")
    for outcome, count in sorted(report.outcome_counts.items(), key=lambda kv: -kv[1]):
        if outcome.value == "no_signal":
            continue
        print(f"  {outcome.value:<28} {count:>6}")

    print(f"\nscan used {world.network.queries_sent} DNS queries "
          f"({world.network.queries_sent / max(1, report.total_scanned):.1f} per zone), "
          f"{world.network.clock.now():.0f}s of simulated time under the 50 qps/NS limit")


if __name__ == "__main__":
    main()
