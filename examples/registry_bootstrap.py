#!/usr/bin/env python3
"""A registry deploys RFC 9615: scan, accept, provision, measure.

Plays the role the paper's App. D sketches: a registry that processes
authenticated bootstrapping signals for its unsecured delegations.  The
script scans a synthetic world, runs the RFC 9615 acceptance policy,
installs the accepted DS RRsets, and shows the DNSSEC deployment rate
before and after — then contrasts with the unauthenticated
accept-after-delay policy of RFC 8078.

Run:  python examples/registry_bootstrap.py
"""

from collections import Counter

from repro.core import AnalysisPipeline
from repro.core.status import DnssecStatus
from repro.ecosystem import build_world
from repro.provisioning import (
    AcceptAfterDelayPolicy,
    AuthenticatedBootstrapPolicy,
    BootstrapEngine,
)


def deployment_rate(world) -> float:
    scanner = world.make_scanner()
    results = scanner.scan_many(world.scan_list)
    report = AnalysisPipeline(world.operator_db).analyze(results)
    return report.status_count(DnssecStatus.SECURE) / report.total_resolved, results


def main() -> None:
    world = build_world(scale=1 / 500_000, seed=9)
    print(f"world: {world.zone_count} zones\n")

    before, results = deployment_rate(world)
    print(f"DNSSEC deployment before bootstrapping: {100 * before:.2f} % "
          f"(paper measures 5.5 %)")

    print("\n--- RFC 9615 authenticated bootstrapping ---")
    engine = BootstrapEngine(world, AuthenticatedBootstrapPolicy())
    run = engine.run(results=results)
    print(f"candidates evaluated: {run.evaluated}")
    print(f"accepted + verified secure: {len(run.secured)}")
    reasons = Counter(run.rejected.values())
    print("top rejection reasons:")
    for reason, count in reasons.most_common(5):
        print(f"  {count:>5}  {reason}")

    after, results_after = deployment_rate(world)
    print(f"\nDNSSEC deployment after AB: {100 * after:.2f} % "
          f"(+{100 * (after - before):.2f} points)")
    print("the paper's takeaway holds: the AB deployment space is real but small —")
    print("the primary barrier is DNSSEC adoption itself, not AB adoption.")

    print("\n--- RFC 8078 accept-after-delay (unauthenticated) for comparison ---")
    delay = AcceptAfterDelayPolicy(hold_days=3)
    engine2 = BootstrapEngine(world, delay)
    first = engine2.run(results=results_after, verify=False)
    print(f"day 0: {len(first.accepted)} accepted, {len(first.deferred)} held for observation")
    delay.advance_days(3)
    second = engine2.run(results=results_after, verify=False)
    print(f"day 3: {len(second.accepted)} accepted "
          f"(every well-formed island, but without cryptographic assurance)")


if __name__ == "__main__":
    main()
