#!/usr/bin/env python3
"""CDS-driven key rollover, validated at every stage (RFC 7344 §4).

Once a zone is secured — whether bootstrapped via RFC 9615 or manually —
the same CDS machinery automates key rollovers.  This example walks the
standard double-signature KSK rollover and shows the chain of trust
staying valid throughout, including a cross-algorithm roll
(Ed25519 → ECDSA-P256), the scenario Müller et al. (the paper's §5)
found operators getting wrong in the wild.

Run:  python examples/key_rollover.py
"""

from repro.dns import A, NS, RRset, RRType, SOA, Zone
from repro.dns.name import Name
from repro.dnssec import Algorithm, KeyPair, ds_from_dnskey, sign_zone
from repro.provisioning import RolloverEngine

ZONE = "payments.example.net"


def build_secured_zone():
    key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"initial-ksk")
    zone = Zone(ZONE)
    zone.add(ZONE, 3600, SOA(f"ns1.{ZONE}", f"hostmaster.{ZONE}", 2025070601))
    zone.add(ZONE, 3600, NS(f"ns1.{ZONE}"))
    zone.add(f"www.{ZONE}", 300, A("192.0.2.80"))
    sign_zone(zone, [key])
    parent_ds = RRset(
        ZONE, RRType.DS, 3600, [ds_from_dnskey(Name.from_text(ZONE), key.dnskey())]
    )
    return zone, key, parent_ds


def show(result):
    marker = "OK " if result.chain_valid else "BROKEN"
    print(f"  [{marker}] {result.stage.value:<18} "
          f"DNSKEYs={result.dnskey_count}  DS tags={result.ds_key_tags}  {result.detail}")


def main() -> None:
    zone, key, parent_ds = build_secured_zone()
    print(f"{ZONE}: secured with Ed25519 key tag {key.key_tag}\n")

    print("rollover 1: Ed25519 -> Ed25519")
    engine = RolloverEngine(zone, key, parent_ds)
    new_key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"second-ksk")
    for result in engine.run_full_rollover(new_key):
        show(result)

    print("\nrollover 2: Ed25519 -> ECDSA-P256 (algorithm rollover)")
    ecdsa_key = KeyPair.generate(Algorithm.ECDSAP256SHA256, ksk=True, seed=b"ecdsa-ksk")
    engine2 = RolloverEngine(zone, engine.active_key, engine.parent_ds)
    for result in engine2.run_full_rollover(ecdsa_key):
        show(result)

    print("\nthe chain never went dark: every stage validated before proceeding.")
    print("a registry processing CDS (RFC 7344) performs the DS swap step;")
    print("RFC 9615 adds the *first* DS — after that, rollovers are routine.")


if __name__ == "__main__":
    main()
