#!/usr/bin/env python3
"""Serve a signed zone over *real* UDP on localhost and validate answers.

Proves the wire codec and DNSSEC engine interoperate over actual
datagrams — the same code path the simulated fabric exercises in memory.

Run:  python examples/live_udp_demo.py
"""

from repro.dns import A, NS, Name, RRType, SOA, Zone, make_query
from repro.dns.message import Message
from repro.dnssec import Algorithm, KeyPair, sign_zone, validate_rrset
from repro.dnssec.validator import extract_rrsigs
from repro.server import AuthoritativeServer
from repro.server.udp import UdpNameserver, query_udp

ZONE = "demo.example"


def main() -> None:
    key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"udp-demo")
    zone = Zone(ZONE)
    zone.add(ZONE, 3600, SOA(f"ns1.{ZONE}", f"hostmaster.{ZONE}", 2025070601))
    zone.add(ZONE, 3600, NS(f"ns1.{ZONE}"))
    zone.add(f"ns1.{ZONE}", 3600, A("127.0.0.1"))
    zone.add(f"www.{ZONE}", 300, A("192.0.2.80"))
    sign_zone(zone, [key])

    server = AuthoritativeServer("udp-demo")
    server.add_zone(zone)

    with UdpNameserver(server) as endpoint:
        print(f"authoritative server listening on {endpoint[0]}:{endpoint[1]}\n")

        query = make_query(f"www.{ZONE}", RRType.A, msg_id=1234)
        response: Message = query_udp(endpoint, query)
        print(f"query : www.{ZONE} A (DO bit set)")
        print(f"answer: rcode={response.rcode.name} AA={response.authoritative}")
        for rrset in response.answer:
            for line in rrset.to_text().splitlines():
                print(f"        {line}")

        a_rrset = response.get_rrset(response.answer, Name.from_text(f"www.{ZONE}"), RRType.A)
        rrsigs = extract_rrsigs(
            response.get_rrset(response.answer, Name.from_text(f"www.{ZONE}"), RRType.RRSIG)
        )
        outcome = validate_rrset(a_rrset, rrsigs, [key.dnskey()])
        print(f"\nsignature validation over UDP round trip: "
              f"{'SECURE' if outcome.ok else outcome.reason.value}")

        nx = query_udp(endpoint, make_query(f"nope.{ZONE}", RRType.A, msg_id=1235))
        print(f"\nnonexistent name: rcode={nx.rcode.name}, "
              f"{sum(1 for r in nx.authority if int(r.rrtype) == int(RRType.NSEC))} NSEC proof(s) attached")


if __name__ == "__main__":
    main()
