#!/usr/bin/env python3
"""Reproduce the paper's full evaluation: Tables 1-3, Figure 1, and the
shape checks, at a configurable scale.

Run:  python examples/reproduce_paper.py [scale]

*scale* defaults to 1e-5 (2 876 zones, ~30 s).  Use 1e-4 for the
full-fidelity run the benchmark harness performs (28 760 zones).
"""

import sys

from repro.campaign import CampaignConfig, run_campaign
from repro.reports import (
    check_shapes,
    compute_figure1,
    compute_table1,
    compute_table2,
    compute_table3,
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
)
from repro.reports.figure1 import expected_figure1
from repro.reports.table1 import expected_table1
from repro.reports.table2 import expected_table2
from repro.reports.table3 import expected_table3


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-5
    print(f"running a measurement campaign at scale {scale:g} "
          f"(~{287_600_000 * scale:,.0f} zones) ...\n")
    campaign = run_campaign(CampaignConfig(scale=scale, seed=1, recheck=True))
    report, targets = campaign.report, campaign.world.targets

    print(render_table1(compute_table1(report), expected_table1(targets)))
    print()
    print(render_table2(compute_table2(report), expected_table2(targets)))
    print()
    table3 = compute_table3(report)
    print(render_table3(table3, expected_table3(targets)))
    print()
    print(render_figure1(compute_figure1(report), expected_figure1(targets)))

    print("\nShape checks against the paper's narrative:")
    checks = check_shapes(report, table3)
    for check in checks:
        print(f"  {check}")
    passed = sum(check.passed for check in checks)
    print(f"\n{passed}/{len(checks)} checks passed "
          f"(small scales distort the rare-case checks; use 1e-4 for all)")
    print(f"re-check pass resolved {len(campaign.rechecked)} transient signal failures")
    print(f"simulated scan duration: {campaign.simulated_duration / 3600:.2f} hours "
          f"(the paper's full-scale scan ran for over a month)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
