#!/usr/bin/env python3
"""Store-then-analyse: the paper's 6.5 TiB workflow in miniature.

The authors stored every DNS message and analysed offline (App. D).
This example scans a world, dumps the raw results to JSON lines,
then re-analyses the stored file with *no world and no network* —
and shows the two analyses agree exactly.

Run:  python examples/offline_analysis.py
"""

import io
import os
import tempfile

from repro.core import AnalysisPipeline
from repro.ecosystem import build_world
from repro.scanner.serialize import dump_results, load_results


def main() -> None:
    world = build_world(scale=1 / 1_000_000, seed=8)
    scanner = world.make_scanner()
    print(f"scanning {world.zone_count} zones ...")
    results = scanner.scan_many(world.scan_list)

    live_report = AnalysisPipeline(world.operator_db).analyze(results)

    with tempfile.NamedTemporaryFile(
        "w", suffix=".jsonl", delete=False, encoding="utf-8"
    ) as fp:
        path = fp.name
        count = dump_results(results, fp)
    size = os.path.getsize(path)
    print(f"stored {count} scan records -> {path} ({size / 1024:.0f} KiB)")
    paper_scale = size / world.zone_count * 287_600_000
    print(f"(extrapolated to 287.6M zones: ~{paper_scale / 2**40:.1f} TiB; "
          f"the paper stored 6.5 TiB of full DNS messages)")

    with open(path, encoding="utf-8") as fp:
        stored = list(load_results(fp))
    offline_report = AnalysisPipeline(world.operator_db).analyze(stored)

    print("\nlive vs offline analysis:")
    agree = True
    for status, live_count in sorted(live_report.status_counts.items(), key=lambda kv: kv[0].value):
        offline_count = offline_report.status_counts.get(status, 0)
        marker = "==" if live_count == offline_count else "!="
        agree &= live_count == offline_count
        print(f"  {status.value:<12} {live_count:>6} {marker} {offline_count:<6}")
    for outcome, live_count in sorted(live_report.outcome_counts.items(), key=lambda kv: kv[0].value):
        offline_count = offline_report.outcome_counts.get(outcome, 0)
        agree &= live_count == offline_count
    print("\nanalyses agree exactly" if agree else "\nMISMATCH — this is a bug")
    os.unlink(path)


if __name__ == "__main__":
    main()
