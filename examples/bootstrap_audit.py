#!/usr/bin/env python3
"""Audit a DNS operator's RFC 9615 deployment, condition by condition.

This example builds a miniature deployment *by hand* with the low-level
API — a registry, an operator with two nameservers, a customer zone that
is a secure island, and the ``_dsboot…_signal`` zones — then runs the
scanner and walks through each acceptance condition the way a registry
implementing authenticated bootstrapping would.

Run:  python examples/bootstrap_audit.py
"""

from repro.core import assess_zone
from repro.core.signal import analyze_signals, validate_chain
from repro.dns import Name, NS, RRType, RRset, SOA, A, Zone
from repro.dnssec import Algorithm, KeyPair, ds_from_dnskey, sign_zone, sign_rrset
from repro.dnssec.ds import cds_from_dnskey
from repro.scanner import Scanner
from repro.server import AuthoritativeServer, SimulatedNetwork

CUSTOMER = "shop.example.ch"
NS1, NS2 = "ns1.hoster.net", "ns2.hoster.net"


def build_network():
    network = SimulatedNetwork()

    # --- the customer zone: signed, but no DS at the registry (island) ---
    customer_key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"customer")
    customer = Zone(CUSTOMER)
    customer.add(CUSTOMER, 3600, SOA(NS1, f"hostmaster.{CUSTOMER}", 1))
    customer.add(CUSTOMER, 3600, NS(NS1))
    customer.add(CUSTOMER, 3600, NS(NS2))
    customer.add(f"www.{CUSTOMER}", 300, A("192.0.2.10"))
    cds = cds_from_dnskey(Name.from_text(CUSTOMER), customer_key.dnskey())
    customer.add_rrset(RRset(CUSTOMER, RRType.CDS, 3600, [cds]))
    customer.add_rrset(RRset(CUSTOMER, RRType.CDNSKEY, 3600, [customer_key.cdnskey()]))
    sign_zone(customer, [customer_key])

    # --- the operator's NS-host zone and signaling zones -------------------
    hoster_key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"hoster")
    hoster = Zone("hoster.net")
    hoster.add("hoster.net", 3600, SOA(NS1, "hostmaster.hoster.net", 1))
    for ns_host, ip in ((NS1, "203.0.113.1"), (NS2, "203.0.113.2")):
        hoster.add("hoster.net", 3600, NS(ns_host))
        hoster.add(ns_host, 3600, A(ip))

    signal_zones = []
    for ns_host in (NS1, NS2):
        signal_key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=ns_host.encode())
        origin = Name.from_text(f"_signal.{ns_host}")
        signal = Zone(origin)
        signal.add(origin, 3600, SOA(NS1, "hostmaster.hoster.net", 1))
        signal.add(origin, 3600, NS(NS1))
        signal.add(origin, 3600, NS(NS2))
        boot = Name.from_text(f"_dsboot.{CUSTOMER}").concatenate(origin)
        signal.add_rrset(RRset(boot, RRType.CDS, 3600, [cds]))
        signal.add_rrset(RRset(boot, RRType.CDNSKEY, 3600, [customer_key.cdnskey()]))
        sign_zone(signal, [signal_key])
        signal_zones.append(signal)
        # Securely delegate the signaling zone from hoster.net.
        hoster.add(origin, 3600, NS(NS1))
        hoster.add(origin, 3600, NS(NS2))
        hoster.add(origin, 3600, ds_from_dnskey(origin, signal_key.dnskey()))
    sign_zone(hoster, [hoster_key])

    # --- registries and root -------------------------------------------------
    ch_key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"ch")
    ch = Zone("ch")
    ch.add("ch", 3600, SOA("a.nic.ch", "hostmaster.nic.ch", 1))
    ch.add("ch", 3600, NS("a.nic.ch"))
    ch.add("a.nic.ch", 3600, A("192.5.6.1"))
    ch.add(CUSTOMER, 3600, NS(NS1))
    ch.add(CUSTOMER, 3600, NS(NS2))  # no DS: a secure island
    sign_zone(ch, [ch_key])

    net_key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"net")
    net = Zone("net")
    net.add("net", 3600, SOA("a.nic.net", "hostmaster.nic.net", 1))
    net.add("net", 3600, NS("a.nic.net"))
    net.add("a.nic.net", 3600, A("192.5.6.2"))
    net.add("hoster.net", 3600, NS(NS1))
    net.add("hoster.net", 3600, NS(NS2))
    net.add("hoster.net", 3600, ds_from_dnskey(Name.from_text("hoster.net"), hoster_key.dnskey()))
    net.add(NS1, 3600, A("203.0.113.1"))
    net.add(NS2, 3600, A("203.0.113.2"))
    sign_zone(net, [net_key])

    root_key = KeyPair.generate(Algorithm.ED25519, ksk=True, seed=b"root")
    root = Zone(".")
    root.add(".", 3600, SOA("a.root-servers.net", "nstld.example", 1))
    root.add(".", 3600, NS("a.root-servers.net"))
    root.add("a.root-servers.net", 3600, A("198.41.0.4"))
    for tld, key, ip in (("ch", ch_key, "192.5.6.1"), ("net", net_key, "192.5.6.2")):
        root.add(tld, 3600, NS(f"a.nic.{tld}"))
        root.add(tld, 3600, ds_from_dnskey(Name.from_text(tld), key.dnskey()))
        root.add(f"a.nic.{tld}", 3600, A(ip))
    sign_zone(root, [root_key])

    # --- servers ---------------------------------------------------------------
    root_server = AuthoritativeServer("root")
    root_server.add_zone(root)
    ch_server = AuthoritativeServer("nic.ch")
    ch_server.add_zone(ch)
    net_server = AuthoritativeServer("nic.net")
    net_server.add_zone(net)
    operator = AuthoritativeServer("hoster")
    for zone in (customer, hoster, *signal_zones):
        operator.add_zone(zone)

    network.register("198.41.0.4", root_server)
    network.register("192.5.6.1", ch_server)
    network.register("192.5.6.2", net_server)
    network.register("203.0.113.1", operator)
    network.register("203.0.113.2", operator)
    return network


def main() -> None:
    network = build_network()
    scanner = Scanner(network, ["198.41.0.4"])
    result = scanner.scan_zone(CUSTOMER)

    print(f"auditing {CUSTOMER} for RFC 9615 authenticated bootstrapping\n")
    assessment = assess_zone(result)
    print(f"DNSSEC status:     {assessment.status.value} "
          f"(signed zone, no DS at the .ch registry)")
    print(f"in-zone CDS:       present={assessment.cds.present} "
          f"consistent={assessment.cds.consistent} "
          f"matches DNSKEY={assessment.cds.matches_dnskey} "
          f"signatures valid={assessment.cds.sigs_valid}")

    print("\nRFC 9615 acceptance conditions:")
    signal = assessment.signal
    print(f"  1. zone not already secured ........ {assessment.status.value != 'secure'}")
    print(f"  2. signal under every NS ........... {signal.covered_all_ns}")
    print(f"  3. no zone cuts in signaling names . {signal.no_zone_cuts}")
    print(f"  4. signal zones secure + valid ..... {signal.secure_and_valid}")
    print(f"  5. signal matches in-zone CDS ...... {signal.matches_zone_cds}")

    for scan in result.signals:
        status = validate_chain(scan.chain, scan.signal_zone_apex)
        chain_text = " -> ".join(str(link.zone) for link in scan.chain)
        print(f"\n  chain for {scan.ns_host}: {chain_text}")
        print(f"    validation: {status.value}")

    print(f"\nverdict: {assessment.signal_outcome.value}")
    if assessment.signal_outcome.value == "correct":
        print("the .ch registry could install the following DS, completing the chain:")
        from repro.dnssec.ds import cds_to_ds

        for rd in assessment.cds.cds_rrset.rdatas:
            print(f"  {CUSTOMER}. 3600 IN DS {cds_to_ds(rd).to_text()}")


if __name__ == "__main__":
    main()
